//! The line-protocol server loop: one JSON request per line in, one JSON
//! response per line out. The loop is written against generic
//! `BufRead`/`Write` so tests (and the load generator) can drive it over
//! in-memory buffers; the `freezeml` binary plugs in locked
//! stdin/stdout, and the socket server ([`crate::sock`]) plugs in one
//! connection's stream halves.
//!
//! The reader works on **raw bytes**, not `BufRead::lines`:
//!
//! * a line that is not valid UTF-8 is answered with a structured
//!   `{"ok":false,…}` error and the session keeps serving — previously
//!   one stray `0xFF` byte killed the whole session with an
//!   `InvalidData` transport error;
//! * a line longer than [`ServeOptions::max_request_bytes`] is drained
//!   (never buffered) and answered with a structured error — previously
//!   a client streaming bytes without a newline grew the buffer without
//!   bound.

use crate::protocol::{handle_line, Json};
use crate::service::Service;
use freezeml_obs::Val;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Serving limits. `Default` is the CLI's configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Maximum request-line length in bytes (newline excluded). Longer
    /// requests are rejected with a structured error; the line is
    /// consumed without being buffered.
    pub max_request_bytes: usize,
    /// Slow-request threshold: a request line whose handling takes at
    /// least this many milliseconds bumps the `slow_requests` counter
    /// and emits a structured `slow-request` trace event. `None`
    /// disables the slow log.
    pub slow_ms: Option<u64>,
    /// Per-request budget in milliseconds, `None` = unbounded (the
    /// stdio default; the socket server defaults it on). The budget
    /// covers both halves of a request:
    ///
    /// * **reading** — a client that stalls mid-line (or never sends a
    ///   byte) is answered one flat `{"ok":false,"error":"deadline"}`
    ///   line and closed. The socket layer arms kernel read timeouts
    ///   so a stalled read wakes up; this loop adds a wall-clock
    ///   deadline on top so a byte-at-a-time slowloris cannot reset
    ///   the clock forever;
    /// * **checking** — the executor observes the same deadline at
    ///   every wave boundary ([`crate::exec::Executor::run_budgeted`])
    ///   and gives up with the same flat error. Verdicts completed
    ///   before the deadline stay cached, so a retry resumes warm.
    pub request_timeout_ms: Option<u64>,
}

/// Default request cap: a few MiB — generous for whole-document `open`
/// requests, small enough that a misbehaving client cannot grow the
/// server's memory without bound.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            slow_ms: None,
            request_timeout_ms: None,
        }
    }
}

/// One raw request line, as read by [`read_request`].
enum RawLine {
    /// A complete line within the cap (newline stripped).
    Line,
    /// The line exceeded the cap; `0` bytes of it were kept.
    Oversized { len: usize },
    /// The transport timed out, or the per-request deadline passed
    /// before a full line arrived (slowloris / connect-and-stall).
    TimedOut,
}

/// Would this I/O error kind be produced by an armed socket timeout?
/// (`WouldBlock` on Unix sockets, `TimedOut` elsewhere.)
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one `\n`-terminated line of raw bytes into `buf` (cleared
/// first), without ever buffering more than `max` bytes. `Ok(None)` at
/// EOF with no pending bytes; a final unterminated line is still
/// served. The trailing `\n` (and a preceding `\r`) are stripped. A
/// transport timeout, or `deadline` passing between chunks, yields
/// [`RawLine::TimedOut`] (any partial line is abandoned).
fn read_request<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
    deadline: Option<Instant>,
) -> io::Result<Option<RawLine>> {
    buf.clear();
    let mut total = 0usize;
    let mut oversized = false;
    loop {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Ok(Some(RawLine::TimedOut));
            }
        }
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if is_timeout(e.kind()) => return Ok(Some(RawLine::TimedOut)),
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. Serve a pending unterminated line, drop nothing.
            return Ok(match (total, oversized) {
                (0, _) => None,
                (len, true) => Some(RawLine::Oversized { len }),
                (_, false) => Some(RawLine::Line),
            });
        }
        let (chunk, terminated) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (&available[..pos], true),
            None => (available, false),
        };
        total += chunk.len();
        if !oversized {
            if total > max {
                // Stop buffering: the whole line is rejected, so no
                // prefix is worth keeping. Keep draining to the newline.
                oversized = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(terminated);
        reader.consume(consumed);
        if terminated {
            if !oversized && buf.last() == Some(&b'\r') {
                buf.pop();
                total -= 1;
            }
            return Ok(Some(if oversized {
                RawLine::Oversized { len: total }
            } else {
                RawLine::Line
            }));
        }
    }
}

fn transport_error(kind: &str, detail: String) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(detail)),
        ("kind".to_string(), Json::Str(kind.to_string())),
    ])
}

/// Serve requests until EOF with the default [`ServeOptions`].
///
/// # Errors
///
/// Only I/O errors on the transport itself.
pub fn serve<R: BufRead, W: Write>(svc: &mut Service, reader: R, writer: W) -> io::Result<()> {
    serve_with(svc, reader, writer, &ServeOptions::default())
}

/// Serve requests until EOF. Every line gets exactly one response line;
/// malformed, non-UTF-8, and oversized requests produce `{"ok":false,…}`
/// rather than terminating the session. Blank lines are ignored.
///
/// # Errors
///
/// Only I/O errors on the transport itself.
pub fn serve_with<R: BufRead, W: Write>(
    svc: &mut Service,
    mut reader: R,
    mut writer: W,
    opts: &ServeOptions,
) -> io::Result<()> {
    let budget = opts.request_timeout_ms.map(Duration::from_millis);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // A drain request ends the session at the request boundary:
        // the response already in flight was written, nothing of the
        // client's is dropped, and the close is clean.
        if svc.shared().draining() {
            return Ok(());
        }
        // The per-request clock starts when we begin waiting for the
        // line and covers the check too: one budget per request.
        let deadline = budget.map(|b| Instant::now() + b);
        let Some(raw) = read_request(&mut reader, &mut buf, opts.max_request_bytes, deadline)?
        else {
            return Ok(());
        };
        let response = match raw {
            RawLine::TimedOut => {
                if svc.shared().draining() {
                    // The timeout wake-up raced a drain: the client
                    // sent nothing, owes nothing, gets a clean close.
                    return Ok(());
                }
                svc.shared().metrics().deadline_exceeded.inc();
                // One flat structured line, then a clean close — the
                // contract a stalled or slowloris client gets. The
                // write is best-effort: the peer may be gone.
                let _ = writer.write_all(b"{\"ok\":false,\"error\":\"deadline\"}\n");
                let _ = writer.flush();
                return Ok(());
            }
            RawLine::Oversized { len } => transport_error(
                "oversized",
                format!(
                    "request of {len} bytes exceeds the {}-byte limit",
                    opts.max_request_bytes
                ),
            ),
            RawLine::Line => match std::str::from_utf8(&buf) {
                Err(e) => transport_error("encoding", format!("request is not valid UTF-8: {e}")),
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let t0 = Instant::now();
                    svc.set_deadline(deadline);
                    let resp = handle_line(svc, line);
                    svc.set_deadline(None);
                    if let Some(limit) = opts.slow_ms {
                        let ms = t0.elapsed().as_millis() as u64;
                        if ms >= limit {
                            let shared = svc.shared();
                            shared.metrics().slow_requests.inc();
                            shared.tracer().event(
                                "slow-request",
                                svc.trace_ctx(),
                                &[("ms", Val::U(ms)), ("bytes", Val::U(line.len() as u64))],
                            );
                        }
                    }
                    resp
                }
            },
        };
        // One write per response: a `writeln!` straight to a socket
        // splits into tiny writes, and Nagle + delayed ACK turns each
        // round trip into a ~40 ms stall.
        let mut out = response.to_string();
        out.push('\n');
        if let Err(e) = writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
        {
            if is_timeout(e.kind()) {
                // The peer stopped reading: their loss, counted and
                // closed — never a pinned session thread.
                svc.shared().metrics().deadline_exceeded.inc();
                return Ok(());
            }
            return Err(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::service::ServiceConfig;
    use freezeml_core::Options;
    use std::io::Cursor;

    fn uf_service(workers: usize) -> Service {
        Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers,
        })
    }

    fn run_bytes(svc: &mut Service, script: &[u8], opts: &ServeOptions) -> Vec<Json> {
        let mut out = Vec::new();
        serve_with(svc, Cursor::new(script), &mut out, opts).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect()
    }

    #[test]
    fn serves_a_scripted_session_over_buffers() {
        let script = concat!(
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\n"}"##,
            "\n",
            "\n", // blank lines are skipped
            r#"{"cmd":"type-of","doc":"m","name":"f"}"#,
            "\n",
            "garbage",
            "\n",
            r#"{"cmd":"close","doc":"m"}"#,
            "\n",
        );
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, script.as_bytes(), &ServeOptions::default());
        assert_eq!(lines.len(), 4, "one response per non-blank request");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            lines[1].get("result").and_then(Json::as_str),
            Some("forall a. a -> a")
        );
        assert_eq!(lines[2].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(lines[3].get("closed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn a_non_utf8_line_is_rejected_without_killing_the_session() {
        // Regression: `BufRead::lines` returns an InvalidData error on
        // the 0xFF byte, which `line?` propagated — one bad client line
        // terminated the whole session. Now the line is answered with a
        // structured error and the session keeps serving.
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        script.push(b'\n');
        script.extend_from_slice(b"\xFF\xFE garbage bytes \xFF");
        script.push(b'\n');
        script.extend_from_slice(br#"{"cmd":"type-of","doc":"m","name":"x"}"#);
        script.push(b'\n');
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, &script, &ServeOptions::default());
        assert_eq!(lines.len(), 3, "the bad line got a response, not a hangup");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("kind").and_then(Json::as_str),
            Some("encoding")
        );
        assert_eq!(lines[2].get("result").and_then(Json::as_str), Some("Int"));
    }

    #[test]
    fn an_oversized_request_is_rejected_and_not_buffered() {
        // Regression: the reader buffered the whole line before looking
        // at it, so a client streaming bytes without a newline grew
        // memory without bound. The cap drains instead of buffering.
        let opts = ServeOptions {
            max_request_bytes: 64,
            ..ServeOptions::default()
        };
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        script.push(b'\n');
        script.extend_from_slice(&vec![b'a'; 10_000]);
        script.push(b'\n');
        script.extend_from_slice(br#"{"cmd":"type-of","doc":"m","name":"x"}"#);
        script.push(b'\n');
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, &script, &opts);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("kind").and_then(Json::as_str),
            Some("oversized")
        );
        assert!(lines[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("10000 bytes"));
        assert_eq!(lines[2].get("result").and_then(Json::as_str), Some("Int"));
    }

    #[test]
    fn an_unterminated_final_line_and_oversized_eof_are_served() {
        let opts = ServeOptions {
            max_request_bytes: 16,
            ..ServeOptions::default()
        };
        // No trailing newline on either request; the second is over cap.
        let mut svc = uf_service(1);
        let lines = run_bytes(
            &mut svc,
            br#"{"cmd":"check","doc":"q"}"#,
            &ServeOptions::default(),
        );
        assert_eq!(lines.len(), 1, "final unterminated line still answered");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(false)), "unknown doc");
        let lines = run_bytes(&mut svc, &vec![b'z'; 500], &opts);
        assert_eq!(
            lines[0].get("kind").and_then(Json::as_str),
            Some("oversized")
        );
    }

    #[test]
    fn crlf_lines_are_accepted() {
        let script = b"{\"cmd\":\"open\",\"doc\":\"m\",\"text\":\"let x = 1;;\"}\r\n";
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, script, &ServeOptions::default());
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
    }

    /// A reader that serves its script, then stalls forever: every
    /// further read reports `WouldBlock`, exactly like a socket with an
    /// armed read timeout whose peer went quiet.
    struct StallAfter {
        data: Cursor<Vec<u8>>,
    }

    impl io::Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match io::Read::read(&mut self.data, buf)? {
                0 => Err(io::ErrorKind::WouldBlock.into()),
                n => Ok(n),
            }
        }
    }

    impl BufRead for StallAfter {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            let chunk = self.data.fill_buf()?;
            if chunk.is_empty() {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            Ok(chunk)
        }

        fn consume(&mut self, n: usize) {
            self.data.consume(n);
        }
    }

    #[test]
    fn a_stalled_client_gets_a_flat_deadline_error_and_a_clean_close() {
        let opts = ServeOptions {
            request_timeout_ms: Some(1_000),
            ..ServeOptions::default()
        };
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        script.push(b'\n');
        let mut svc = uf_service(1);
        let mut out = Vec::new();
        serve_with(
            &mut svc,
            StallAfter {
                data: Cursor::new(script),
            },
            &mut out,
            &opts,
        )
        .unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 2, "the open's answer, then the deadline");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        // The deadline answer is the flat two-field shape, nothing else.
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("error").and_then(Json::as_str),
            Some("deadline")
        );
        assert_eq!(lines[1].get("kind"), None, "flat shape, no transport kind");
        assert_eq!(svc.shared().metrics().deadline_exceeded.get(), 1);
    }

    /// A slowloris: one byte of a never-terminated line per read. The
    /// kernel timeout never fires (every read makes "progress"), so
    /// only the wall-clock deadline in the read loop can catch it.
    struct Drip {
        byte: [u8; 1],
    }

    impl io::Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_millis(2));
            buf[0] = self.byte[0];
            Ok(1)
        }
    }

    impl BufRead for Drip {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            std::thread::sleep(Duration::from_millis(2));
            Ok(&self.byte)
        }

        fn consume(&mut self, _n: usize) {}
    }

    #[test]
    fn a_byte_at_a_time_slowloris_is_timed_out_by_the_wall_clock() {
        let opts = ServeOptions {
            request_timeout_ms: Some(60),
            ..ServeOptions::default()
        };
        let mut svc = uf_service(1);
        let mut out = Vec::new();
        let t0 = Instant::now();
        serve_with(&mut svc, Drip { byte: [b'a'] }, &mut out, &opts).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the drip was cut off: {:?}",
            t0.elapsed()
        );
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "{\"ok\":false,\"error\":\"deadline\"}\n");
        assert_eq!(svc.shared().metrics().deadline_exceeded.get(), 1);
    }

    #[test]
    fn a_draining_hub_closes_the_session_at_the_request_boundary() {
        let mut svc = uf_service(1);
        svc.shared().request_drain();
        let script = br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#;
        let lines = run_bytes(&mut svc, script, &ServeOptions::default());
        assert!(lines.is_empty(), "drained before reading: clean close");
    }
}
