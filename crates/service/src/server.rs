//! The line-protocol server loop: one JSON request per line in, one JSON
//! response per line out. The loop is written against generic
//! `BufRead`/`Write` so tests (and the load generator) can drive it over
//! in-memory buffers; the `freezeml` binary plugs in locked
//! stdin/stdout, and the socket server ([`crate::sock`]) plugs in one
//! connection's stream halves.
//!
//! The reader works on **raw bytes**, not `BufRead::lines`:
//!
//! * a line that is not valid UTF-8 is answered with a structured
//!   `{"ok":false,…}` error and the session keeps serving — previously
//!   one stray `0xFF` byte killed the whole session with an
//!   `InvalidData` transport error;
//! * a line longer than [`ServeOptions::max_request_bytes`] is drained
//!   (never buffered) and answered with a structured error — previously
//!   a client streaming bytes without a newline grew the buffer without
//!   bound.

use crate::protocol::{handle_line, Json};
use crate::service::Service;
use freezeml_obs::Val;
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Serving limits. `Default` is the CLI's configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Maximum request-line length in bytes (newline excluded). Longer
    /// requests are rejected with a structured error; the line is
    /// consumed without being buffered.
    pub max_request_bytes: usize,
    /// Slow-request threshold: a request line whose handling takes at
    /// least this many milliseconds bumps the `slow_requests` counter
    /// and emits a structured `slow-request` trace event. `None`
    /// disables the slow log.
    pub slow_ms: Option<u64>,
}

/// Default request cap: a few MiB — generous for whole-document `open`
/// requests, small enough that a misbehaving client cannot grow the
/// server's memory without bound.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            slow_ms: None,
        }
    }
}

/// One raw request line, as read by [`read_request`].
enum RawLine {
    /// A complete line within the cap (newline stripped).
    Line,
    /// The line exceeded the cap; `0` bytes of it were kept.
    Oversized { len: usize },
}

/// Read one `\n`-terminated line of raw bytes into `buf` (cleared
/// first), without ever buffering more than `max` bytes. `Ok(None)` at
/// EOF with no pending bytes; a final unterminated line is still
/// served. The trailing `\n` (and a preceding `\r`) are stripped.
fn read_request<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<Option<RawLine>> {
    buf.clear();
    let mut total = 0usize;
    let mut oversized = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF. Serve a pending unterminated line, drop nothing.
            return Ok(match (total, oversized) {
                (0, _) => None,
                (len, true) => Some(RawLine::Oversized { len }),
                (_, false) => Some(RawLine::Line),
            });
        }
        let (chunk, terminated) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (&available[..pos], true),
            None => (available, false),
        };
        total += chunk.len();
        if !oversized {
            if total > max {
                // Stop buffering: the whole line is rejected, so no
                // prefix is worth keeping. Keep draining to the newline.
                oversized = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(terminated);
        reader.consume(consumed);
        if terminated {
            if !oversized && buf.last() == Some(&b'\r') {
                buf.pop();
                total -= 1;
            }
            return Ok(Some(if oversized {
                RawLine::Oversized { len: total }
            } else {
                RawLine::Line
            }));
        }
    }
}

fn transport_error(kind: &str, detail: String) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(detail)),
        ("kind".to_string(), Json::Str(kind.to_string())),
    ])
}

/// Serve requests until EOF with the default [`ServeOptions`].
///
/// # Errors
///
/// Only I/O errors on the transport itself.
pub fn serve<R: BufRead, W: Write>(svc: &mut Service, reader: R, writer: W) -> io::Result<()> {
    serve_with(svc, reader, writer, &ServeOptions::default())
}

/// Serve requests until EOF. Every line gets exactly one response line;
/// malformed, non-UTF-8, and oversized requests produce `{"ok":false,…}`
/// rather than terminating the session. Blank lines are ignored.
///
/// # Errors
///
/// Only I/O errors on the transport itself.
pub fn serve_with<R: BufRead, W: Write>(
    svc: &mut Service,
    mut reader: R,
    mut writer: W,
    opts: &ServeOptions,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    while let Some(raw) = read_request(&mut reader, &mut buf, opts.max_request_bytes)? {
        let response = match raw {
            RawLine::Oversized { len } => transport_error(
                "oversized",
                format!(
                    "request of {len} bytes exceeds the {}-byte limit",
                    opts.max_request_bytes
                ),
            ),
            RawLine::Line => match std::str::from_utf8(&buf) {
                Err(e) => transport_error("encoding", format!("request is not valid UTF-8: {e}")),
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let t0 = Instant::now();
                    let resp = handle_line(svc, line);
                    if let Some(limit) = opts.slow_ms {
                        let ms = t0.elapsed().as_millis() as u64;
                        if ms >= limit {
                            let shared = svc.shared();
                            shared.metrics().slow_requests.inc();
                            shared.tracer().event(
                                "slow-request",
                                svc.trace_ctx(),
                                &[("ms", Val::U(ms)), ("bytes", Val::U(line.len() as u64))],
                            );
                        }
                    }
                    resp
                }
            },
        };
        // One write per response: a `writeln!` straight to a socket
        // splits into tiny writes, and Nagle + delayed ACK turns each
        // round trip into a ~40 ms stall.
        let mut out = response.to_string();
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::service::ServiceConfig;
    use freezeml_core::Options;
    use std::io::Cursor;

    fn uf_service(workers: usize) -> Service {
        Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers,
        })
    }

    fn run_bytes(svc: &mut Service, script: &[u8], opts: &ServeOptions) -> Vec<Json> {
        let mut out = Vec::new();
        serve_with(svc, Cursor::new(script), &mut out, opts).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect()
    }

    #[test]
    fn serves_a_scripted_session_over_buffers() {
        let script = concat!(
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\n"}"##,
            "\n",
            "\n", // blank lines are skipped
            r#"{"cmd":"type-of","doc":"m","name":"f"}"#,
            "\n",
            "garbage",
            "\n",
            r#"{"cmd":"close","doc":"m"}"#,
            "\n",
        );
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, script.as_bytes(), &ServeOptions::default());
        assert_eq!(lines.len(), 4, "one response per non-blank request");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            lines[1].get("result").and_then(Json::as_str),
            Some("forall a. a -> a")
        );
        assert_eq!(lines[2].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(lines[3].get("closed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn a_non_utf8_line_is_rejected_without_killing_the_session() {
        // Regression: `BufRead::lines` returns an InvalidData error on
        // the 0xFF byte, which `line?` propagated — one bad client line
        // terminated the whole session. Now the line is answered with a
        // structured error and the session keeps serving.
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        script.push(b'\n');
        script.extend_from_slice(b"\xFF\xFE garbage bytes \xFF");
        script.push(b'\n');
        script.extend_from_slice(br#"{"cmd":"type-of","doc":"m","name":"x"}"#);
        script.push(b'\n');
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, &script, &ServeOptions::default());
        assert_eq!(lines.len(), 3, "the bad line got a response, not a hangup");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("kind").and_then(Json::as_str),
            Some("encoding")
        );
        assert_eq!(lines[2].get("result").and_then(Json::as_str), Some("Int"));
    }

    #[test]
    fn an_oversized_request_is_rejected_and_not_buffered() {
        // Regression: the reader buffered the whole line before looking
        // at it, so a client streaming bytes without a newline grew
        // memory without bound. The cap drains instead of buffering.
        let opts = ServeOptions {
            max_request_bytes: 64,
            ..ServeOptions::default()
        };
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        script.push(b'\n');
        script.extend_from_slice(&vec![b'a'; 10_000]);
        script.push(b'\n');
        script.extend_from_slice(br#"{"cmd":"type-of","doc":"m","name":"x"}"#);
        script.push(b'\n');
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, &script, &opts);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("kind").and_then(Json::as_str),
            Some("oversized")
        );
        assert!(lines[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("10000 bytes"));
        assert_eq!(lines[2].get("result").and_then(Json::as_str), Some("Int"));
    }

    #[test]
    fn an_unterminated_final_line_and_oversized_eof_are_served() {
        let opts = ServeOptions {
            max_request_bytes: 16,
            ..ServeOptions::default()
        };
        // No trailing newline on either request; the second is over cap.
        let mut svc = uf_service(1);
        let lines = run_bytes(
            &mut svc,
            br#"{"cmd":"check","doc":"q"}"#,
            &ServeOptions::default(),
        );
        assert_eq!(lines.len(), 1, "final unterminated line still answered");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(false)), "unknown doc");
        let lines = run_bytes(&mut svc, &vec![b'z'; 500], &opts);
        assert_eq!(
            lines[0].get("kind").and_then(Json::as_str),
            Some("oversized")
        );
    }

    #[test]
    fn crlf_lines_are_accepted() {
        let script = b"{\"cmd\":\"open\",\"doc\":\"m\",\"text\":\"let x = 1;;\"}\r\n";
        let mut svc = uf_service(1);
        let lines = run_bytes(&mut svc, script, &ServeOptions::default());
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
    }
}
