//! The stdio server: one JSON request per line in, one JSON response per
//! line out. The loop is written against generic `BufRead`/`Write` so
//! tests (and the load generator) can drive it over in-memory buffers;
//! the `freezeml` binary plugs in locked stdin/stdout.

use crate::protocol::handle_line;
use crate::service::Service;
use std::io::{self, BufRead, Write};

/// Serve requests until EOF. Every line gets exactly one response line;
/// malformed requests produce `{"ok":false,…}` rather than terminating
/// the session. Blank lines are ignored.
///
/// # Errors
///
/// Only I/O errors on the transport itself.
pub fn serve<R: BufRead, W: Write>(svc: &mut Service, reader: R, mut writer: W) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(svc, &line);
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::protocol::Json;
    use crate::service::ServiceConfig;
    use freezeml_core::Options;
    use std::io::Cursor;

    #[test]
    fn serves_a_scripted_session_over_buffers() {
        let script = concat!(
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\n"}"##,
            "\n",
            "\n", // blank lines are skipped
            r#"{"cmd":"type-of","doc":"m","name":"f"}"#,
            "\n",
            "garbage",
            "\n",
            r#"{"cmd":"close","doc":"m"}"#,
            "\n",
        );
        let mut svc = Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 1,
        });
        let mut out = Vec::new();
        serve(&mut svc, Cursor::new(script), &mut out).unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect();
        assert_eq!(lines.len(), 4, "one response per non-blank request");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            lines[1].get("result").and_then(Json::as_str),
            Some("forall a. a -> a")
        );
        assert_eq!(lines[2].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(lines[3].get("closed"), Some(&Json::Bool(true)));
    }
}
