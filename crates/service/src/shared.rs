//! The hub state shared by every session of one serving process: the
//! concurrent scheme bank, the striped outcome cache, and the
//! declaration-level parse cache.
//!
//! One [`Shared`] behind an `Arc` is what makes the socket server
//! ([`crate::sock`]) more than N isolated services: every connection
//! gets its own [`Service`](crate::Service) (documents are per-session
//! state), but schemes, verdicts, and parsed declarations flow across
//! sessions — a binding checked by one client is a cache hit for every
//! other client, exactly as it is across documents within one service.
//!
//! Cache keys already fingerprint the checker configuration
//! ([`crate::db`]), so one hub safely serves sessions with different
//! engine or option settings.
//!
//! All locks here recover from poisoning (`PoisonError::into_inner`):
//! the executor contains panics at the binding boundary
//! ([`crate::exec`]), and the structures behind these locks are valid
//! after any interrupted single operation — one crashed request must
//! never wedge the hub for every other client.

use crate::db::{Frontend, Outcome};
use crate::hash::U64Map;
use freezeml_engine::SchemeBank;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Stripe count for the outcome cache. Matches the scheme bank's shard
/// count — plenty of lock granularity for a worker pool.
const STRIPES: usize = 16;

/// The outcome cache, striped by cache key so concurrent sessions'
/// workers don't serialise on one map lock. Keys are the Merkle
/// fingerprints from [`crate::db`] (already avalanche-mixed, so the low
/// bits are uniform stripe selectors).
#[derive(Default)]
pub struct StripedCache {
    stripes: [Mutex<U64Map<Outcome>>; STRIPES],
}

impl StripedCache {
    fn stripe(&self, key: u64) -> MutexGuard<'_, U64Map<Outcome>> {
        self.stripes[(key as usize) & (STRIPES - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a verdict by cache key.
    pub fn get(&self, key: u64) -> Option<Outcome> {
        self.stripe(key).get(&key).cloned()
    }

    /// Record a verdict.
    pub fn insert(&self, key: u64, outcome: Outcome) {
        self.stripe(key).insert(key, outcome);
    }

    /// Total cached verdicts across stripes (observability).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cross-session shared state. See the module docs.
#[derive(Default)]
pub struct Shared {
    bank: SchemeBank,
    cache: StripedCache,
    frontend: Mutex<Frontend>,
}

impl Shared {
    /// A fresh hub.
    pub fn new() -> Shared {
        Shared::default()
    }

    /// The concurrent scheme bank (sharded internally; methods take
    /// `&self`).
    pub fn bank(&self) -> &SchemeBank {
        &self.bank
    }

    /// The striped outcome cache.
    pub fn cache(&self) -> &StripedCache {
        &self.cache
    }

    /// The declaration-level parse cache, behind its own lock — held
    /// only for the duration of one document analysis.
    pub fn frontend(&self) -> MutexGuard<'_, Frontend> {
        self.frontend.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
