//! The hub state shared by every session of one serving process: the
//! concurrent scheme bank, the striped outcome cache, the
//! declaration-level parse cache, and the document-report cache.
//!
//! One [`Shared`] behind an `Arc` is what makes the socket server
//! ([`crate::sock`]) more than N isolated services: every connection
//! gets its own [`Service`](crate::Service) (documents are per-session
//! state), but schemes, verdicts, and parsed declarations flow across
//! sessions — a binding checked by one client is a cache hit for every
//! other client, exactly as it is across documents within one service.
//!
//! Cache keys already fingerprint the checker configuration
//! ([`crate::db`]), so one hub safely serves sessions with different
//! engine or option settings.
//!
//! ## Generations
//!
//! Every cache entry is stamped with the hub **generation** — a counter
//! the persistence layer ([`crate::persist`]) advances on each
//! snapshot. A lookup or insert re-stamps the entry with the current
//! generation, so "entries untouched since generation g" is exactly the
//! eviction candidate set when a snapshot must fit `--max-cache-bytes`.
//! With persistence off, the generation sits at zero and the stamps are
//! inert.
//!
//! All locks here recover from poisoning (`PoisonError::into_inner`):
//! the executor contains panics at the binding boundary
//! ([`crate::exec`]), and the structures behind these locks are valid
//! after any interrupted single operation — one crashed request must
//! never wedge the hub for every other client.

use crate::db::{Frontend, Outcome};
use crate::exec::CheckReport;
use crate::hash::U64Map;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, OnceLock, PoisonError};
use freezeml_engine::SchemeBank;
use freezeml_obs::lockrank;
use freezeml_obs::{Registry, Tracer};

/// Stripe count for the outcome cache. Matches the scheme bank's shard
/// count — plenty of lock granularity for a worker pool.
const STRIPES: usize = 16;

/// One cached verdict plus its last-touched generation.
struct Slot {
    outcome: Outcome,
    gen: u64,
}

/// The outcome cache, striped by cache key so concurrent sessions'
/// workers don't serialise on one map lock. Keys are the Merkle
/// fingerprints from [`crate::db`] (already avalanche-mixed, so the low
/// bits are uniform stripe selectors).
pub struct StripedCache {
    stripes: [lockrank::Mutex<U64Map<Slot>>; STRIPES],
    /// The hub generation every touch stamps entries with.
    generation: AtomicU64,
}

impl Default for StripedCache {
    fn default() -> Self {
        StripedCache {
            stripes: std::array::from_fn(|_| {
                lockrank::Mutex::new(
                    lockrank::CACHE_STRIPE,
                    "service.cache.stripe",
                    U64Map::default(),
                )
            }),
            generation: AtomicU64::new(0),
        }
    }
}

impl StripedCache {
    fn stripe(&self, key: u64) -> lockrank::MutexGuard<'_, U64Map<Slot>> {
        self.stripes[(key as usize) & (STRIPES - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a verdict by cache key. A hit re-stamps the entry with
    /// the current generation (it is "in use" for eviction purposes).
    pub fn get(&self, key: u64) -> Option<Outcome> {
        // ord: Relaxed — generation stamp is advisory (eviction
        // heuristic); staleness by one step is harmless.
        let gen = self.generation.load(Ordering::Relaxed);
        let mut stripe = self.stripe(key);
        stripe.get_mut(&key).map(|slot| {
            slot.gen = gen;
            slot.outcome.clone()
        })
    }

    /// Record a verdict at the current generation.
    pub fn insert(&self, key: u64, outcome: Outcome) {
        // ord: Relaxed — generation stamp is advisory; see `get`.
        let gen = self.generation.load(Ordering::Relaxed);
        self.stripe(key).insert(key, Slot { outcome, gen });
    }

    /// Total cached verdicts across stripes (observability).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current hub generation.
    pub fn generation(&self) -> u64 {
        // ord: Relaxed — advisory stamp source; see `get`.
        self.generation.load(Ordering::Relaxed)
    }

    /// Snapshot every entry as `(key, last-touched generation, outcome)`.
    pub(crate) fn export(&self) -> Vec<(u64, u64, Outcome)> {
        let mut out = Vec::new();
        for s in &self.stripes {
            let g = s.lock().unwrap_or_else(PoisonError::into_inner);
            out.extend(
                g.iter()
                    .map(|(&k, slot)| (k, slot.gen, slot.outcome.clone())),
            );
        }
        out
    }

    /// Install an entry with an explicit generation stamp (load path).
    pub(crate) fn insert_with_gen(&self, key: u64, outcome: Outcome, gen: u64) {
        self.stripe(key).insert(key, Slot { outcome, gen });
    }

    /// Drop an entry (eviction).
    pub(crate) fn remove(&self, key: u64) {
        self.stripe(key).remove(&key);
    }

    /// Set the hub generation (load path: resume past the snapshot's).
    pub(crate) fn set_generation(&self, gen: u64) {
        // ord: Relaxed — load path runs before any worker exists.
        self.generation.store(gen, Ordering::Relaxed);
    }

    /// Advance the hub generation (post-snapshot: subsequent touches
    /// are distinguishable from everything the snapshot saw).
    pub(crate) fn advance_generation(&self) -> u64 {
        // ord: Relaxed — single advancing writer (the checkpointer);
        // readers only need atomicity, not ordering.
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// One cached whole-document report plus the independent text digest
/// ([`crate::db::doc_verify`]) and its last-touched generation.
struct DocSlot {
    report: Arc<CheckReport>,
    verify: u64,
    gen: u64,
}

/// Cap on cached document reports; the per-binding cache is what
/// matters, this is the fast path over it.
const DOC_REPORT_CAP: usize = 4096;

/// Cross-session shared state. See the module docs.
pub struct Shared {
    bank: SchemeBank,
    cache: StripedCache,
    frontend: lockrank::Mutex<Frontend>,
    /// Whole-document reports keyed by `db::doc_key` — text + config
    /// fingerprint. A hit serves `open`/`check` without parsing or
    /// scheduling at all; entries are only recorded for reports whose
    /// every outcome is cacheable (no disagreements, no internal
    /// errors), the same rule as the per-binding cache.
    doc_reports: lockrank::Mutex<U64Map<DocSlot>>,
    /// The metrics registry — the single source of truth for every
    /// counter the serving stack exposes ([`freezeml_obs::metrics`]),
    /// including the persistence layer's eviction count.
    metrics: Registry,
    /// The trace sink every session and the checkpoint thread share.
    /// Lazily initialised from the `FREEZEML_TRACE` environment on
    /// first use unless [`Shared::set_tracer`] installed one first
    /// (the `--trace` flag does).
    tracer: OnceLock<Tracer>,
    /// Set when a drain was requested (protocol `shutdown` command or
    /// a signal): the socket accept loop sheds new connections, and
    /// the foreground `join` returns so the final checkpoint can run.
    /// One-way — a hub never un-drains.
    draining: AtomicBool,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            bank: SchemeBank::default(),
            cache: StripedCache::default(),
            frontend: lockrank::Mutex::new(
                lockrank::FRONTEND,
                "service.frontend",
                Frontend::default(),
            ),
            doc_reports: lockrank::Mutex::new(
                lockrank::DOC_REPORTS,
                "service.doc_reports",
                U64Map::default(),
            ),
            metrics: Registry::default(),
            tracer: OnceLock::new(),
            draining: AtomicBool::new(false),
        }
    }
}

impl Shared {
    /// A fresh hub.
    pub fn new() -> Shared {
        Shared::default()
    }

    /// The concurrent scheme bank (sharded internally; methods take
    /// `&self`).
    pub fn bank(&self) -> &SchemeBank {
        &self.bank
    }

    /// The striped outcome cache.
    pub fn cache(&self) -> &StripedCache {
        &self.cache
    }

    /// The declaration-level parse cache, behind its own lock — held
    /// only for the duration of one document analysis.
    pub fn frontend(&self) -> lockrank::MutexGuard<'_, Frontend> {
        self.frontend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn doc_lock(&self) -> lockrank::MutexGuard<'_, U64Map<DocSlot>> {
        self.doc_reports
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached report for a document key, if any. The caller's
    /// independent text digest must match the stored one — a key
    /// collision between similar documents must miss, never serve the
    /// other document's report. A hit re-stamps the entry with the
    /// current generation.
    pub fn doc_report(&self, key: u64, verify: u64) -> Option<Arc<CheckReport>> {
        let gen = self.cache.generation();
        let mut g = self.doc_lock();
        let hit = g.get_mut(&key).and_then(|slot| {
            if slot.verify != verify {
                return None;
            }
            slot.gen = gen;
            Some(Arc::clone(&slot.report))
        });
        if hit.is_some() {
            self.metrics.doc_hits.inc();
        } else {
            self.metrics.doc_misses.inc();
        }
        hit
    }

    /// Record a whole-document report at the current generation.
    pub fn record_doc_report(&self, key: u64, verify: u64, report: Arc<CheckReport>) {
        let gen = self.cache.generation();
        let mut g = self.doc_lock();
        if g.len() > DOC_REPORT_CAP {
            g.clear(); // crude cap, like the frontend's
        }
        g.insert(
            key,
            DocSlot {
                report,
                verify,
                gen,
            },
        );
    }

    /// Number of cached document reports (observability).
    pub fn doc_reports_len(&self) -> usize {
        self.doc_lock().len()
    }

    /// Cache entries evicted by the persistence layer so far.
    pub fn evictions(&self) -> u64 {
        self.metrics.evictions.get()
    }

    pub(crate) fn note_evictions(&self, n: u64) {
        self.metrics.evictions.add(n);
    }

    /// The hub's metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The hub's tracer: the one installed by [`Shared::set_tracer`],
    /// else lazily built from the `FREEZEML_TRACE` environment (off
    /// when unset).
    pub fn tracer(&self) -> &Tracer {
        self.tracer.get_or_init(Tracer::from_env)
    }

    /// Install a tracer (e.g. from `--trace FILE`). Returns `false` if
    /// one was already resolved — first installer wins, matching the
    /// `OnceLock` underneath.
    pub fn set_tracer(&self, tracer: Tracer) -> bool {
        self.tracer.set(tracer).is_ok()
    }

    /// Ask the hub to drain: the socket server stops accepting,
    /// finishes in-flight requests, and its foreground `join` returns.
    /// Idempotent; also flips the registry's `draining` gauge.
    pub fn request_drain(&self) {
        // ord: Release — publishes everything the drain requester did
        // (e.g. the shutdown response it queued) to loops that observe
        // the flag with Acquire and then act on hub state. SeqCst was
        // overkill: there is one flag, so no cross-variable total order
        // is needed.
        self.draining.store(true, Ordering::Release);
        self.metrics.set_draining(true);
    }

    /// Has a drain been requested on this hub?
    pub fn draining(&self) -> bool {
        // ord: Acquire — pairs with the Release store in
        // `request_drain`; a loop seeing `true` also sees the
        // requester's prior writes.
        self.draining.load(Ordering::Acquire)
    }

    /// Snapshot the document reports as `(key, verify, generation,
    /// report)`.
    pub(crate) fn export_doc_reports(&self) -> Vec<(u64, u64, u64, Arc<CheckReport>)> {
        self.doc_lock()
            .iter()
            .map(|(&k, slot)| (k, slot.verify, slot.gen, Arc::clone(&slot.report)))
            .collect()
    }

    /// Install a document report with an explicit generation (load path).
    pub(crate) fn insert_doc_report_with_gen(
        &self,
        key: u64,
        verify: u64,
        report: Arc<CheckReport>,
        gen: u64,
    ) {
        self.doc_lock().insert(
            key,
            DocSlot {
                report,
                verify,
                gen,
            },
        );
    }

    /// Drop a document report (eviction).
    pub(crate) fn remove_doc_report(&self, key: u64) {
        self.doc_lock().remove(&key);
    }
}
