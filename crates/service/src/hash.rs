//! Content hashing for the binding database.
//!
//! The database keys bindings by the hash of their *source slice* and
//! combines dependency keys Merkle-style (see [`crate::db`]). The hash
//! is a word-at-a-time multiply–xor-shift–multiply mix with a SplitMix64
//! finaliser — not cryptographic, but the warm path hashes the whole
//! document on every edit, so byte-serial hashes (FNV et al.) are
//! measurably too slow. Each word is fully avalanched before the next
//! is absorbed, which keeps collisions over thousands of similar
//! documents at the generic n²/2⁶⁵ birthday bound; the cheaper
//! FxHash-style step does *not* (see [`Hasher64::mix`] and the
//! `adjacent_word_edits_do_not_cancel` regression test). The parse
//! cache additionally guards with a full slice comparison, and the
//! document-report cache with an independently seeded second digest.
//!
//! [`U64Map`] is a `HashMap` keyed by already-hashed `u64`s with an
//! identity hasher — no point running SipHash over a digest.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher as StdHasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// An incremental 64-bit content hasher. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Hasher64(u64);

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64(0x2545_f491_4f6c_dd1d)
    }
}

/// Backwards-compatible alias (the original implementation was FNV-1a).
pub type Fnv = Hasher64;

impl Hasher64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn mix(&mut self, word: u64) {
        // A xor-shift between the two multiplies avalanches every word
        // before the next is absorbed. The cheaper FxHash step
        // (`rotl(5)` + one multiply) is NOT enough here: a difference in
        // the top byte of one word survives one multiply confined to the
        // top few bits, the rotate moves it into the low bits, and the
        // next word's low-byte difference cancels it with probability
        // ~2⁻⁵ — observed as real collisions (both seeds at once) between
        // similar documents at only ~5 000 texts. Each step stays a
        // bijection in `word` for fixed state (and vice versa), so two
        // inputs differing in a single word can never collide.
        let x = (self.0 ^ word).wrapping_mul(K);
        self.0 = (x ^ (x >> 32)).wrapping_mul(K);
    }

    /// Absorb raw bytes, eight at a time.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            // lint: allow(unwrap) — chunks_exact(8) yields 8-byte slices by construction
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // The length in the padding byte keeps "a\0" ≠ "a".
            tail[7] = rest.len() as u8 | 0x80;
            self.mix(u64::from_le_bytes(tail));
        }
        self
    }

    /// Absorb a string (with a length prefix, so `("ab","c")` and
    /// `("a","bc")` hash differently).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// Absorb a `u64`.
    pub fn write_u64(&mut self, n: u64) -> &mut Self {
        self.mix(n);
        self
    }

    /// The digest (SplitMix64 finalised, so low and high bits avalanche).
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot string hash.
pub fn hash_str(s: &str) -> u64 {
    Hasher64::new().write(s.as_bytes()).finish()
}

/// Identity hasher for maps keyed by an already-computed digest.
#[derive(Default, Clone)]
pub struct IdentityHasher(u64);

impl StdHasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is for u64 keys only");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// A `HashMap` keyed by pre-hashed `u64`s (no second hashing pass).
pub type U64Map<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_distinctly() {
        let inputs = [
            "",
            "a",
            "b",
            "ab",
            "ba",
            "a\0",
            "abcdefgh",
            "abcdefghi",
            "let x = 1;;",
            "let x = 2;;",
            "let y = 1;;",
        ];
        for (i, x) in inputs.iter().enumerate() {
            for y in &inputs[i + 1..] {
                assert_ne!(hash_str(x), hash_str(y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn length_prefix_separates_fields() {
        let a = Hasher64::new().write_str("ab").write_str("c").finish();
        let b = Hasher64::new().write_str("a").write_str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn hashing_is_deterministic_and_tail_sensitive() {
        assert_eq!(hash_str("foobar"), hash_str("foobar"));
        assert_ne!(hash_str("foobar "), hash_str("foobar"));
        assert_ne!(hash_str("12345678x"), hash_str("12345678y"));
    }

    /// Regression: under the old FxHash-style mixer, the benchmark
    /// generator's edited documents (differing only in one numeric
    /// literal straddling an 8-byte word boundary, bytes 1335–1336 of a
    /// ~2.6 KB text) collided at salts 5190 vs 5920 — on `doc_key` *and*
    /// the independently seeded `doc_verify` at once, because the
    /// cancellation between the two adjacent differing words was
    /// seed-independent. The warm-edit bench then saw `rechecked == 0`
    /// on a never-before-seen document.
    #[test]
    fn adjacent_word_edits_do_not_cancel() {
        use crate::db::{doc_key, doc_verify};
        use crate::load::GenProgram;
        use crate::EngineSel;
        use freezeml_core::Options;
        let gen = GenProgram::generate(120, 0x5EED);
        let opts = Options::default();
        let mut keys = HashMap::new();
        let mut verifies = HashMap::new();
        for salt in 0..6_000u64 {
            let text = gen.edited_text(60, salt);
            if let Some(prev) = keys.insert(doc_key(&text, &opts, EngineSel::Uf), salt) {
                panic!("doc_key collision between salts {prev} and {salt}");
            }
            if let Some(prev) = verifies.insert(doc_verify(&text), salt) {
                panic!("doc_verify collision between salts {prev} and {salt}");
            }
        }
    }

    #[test]
    fn u64_map_round_trips() {
        let mut m: U64Map<&str> = U64Map::default();
        m.insert(hash_str("k"), "v");
        assert_eq!(m.get(&hash_str("k")), Some(&"v"));
        assert_eq!(m.get(&hash_str("other")), None);
    }
}
