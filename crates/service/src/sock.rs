//! The socket front end: the line protocol of [`crate::server`] served
//! over TCP or a Unix-domain socket, many sessions at once.
//!
//! Topology: one accept thread plus a pool of session threads. Every
//! accepted connection becomes one protocol session — a fresh
//! [`Service`] whose documents are private to the connection — but all
//! sessions run against one [`Shared`] hub, so schemes, verdicts, and
//! parsed declarations cross sessions freely: a binding checked for one
//! client is a cache hit for every other client.
//!
//! Concurrency model: with the hub sharded and striped, parallelism
//! comes from *sessions*, not from waves — each connection's executor
//! runs single-worker, and `--workers N` on the CLI sizes the session
//! pool. N clients therefore check N documents genuinely concurrently,
//! interning into the scheme bank without a global lock.
//!
//! Shutdown: [`SocketServer::shutdown`] (also on drop) sets the stop
//! flag, pokes the accept loop with a throwaway connection, and joins
//! every thread; sessions end when their clients hang up.

use crate::server::{serve_with, ServeOptions};
use crate::service::{Service, ServiceConfig};
use crate::shared::Shared;
use freezeml_obs::next_conn_id;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One accepted connection, transport-erased.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => {
                let (conn, _) = l.accept()?;
                // A line protocol of small messages: never wait for a
                // full segment.
                let _ = conn.set_nodelay(true);
                Stream::Tcp(conn)
            }
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        })
    }
}

/// Where the server is reachable — also how `shutdown` pokes the
/// accept loop out of its blocking `accept`.
#[derive(Clone)]
enum Endpoint {
    Tcp(std::net::SocketAddr),
    Unix(PathBuf),
}

impl Endpoint {
    fn poke(&self) {
        // A throwaway connection; the accept loop sees the stop flag
        // on its next iteration. Failure is fine — the listener may
        // already be gone.
        match self {
            Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
            Endpoint::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A running socket server. See the module docs.
pub struct SocketServer {
    endpoint: Endpoint,
    display_addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Vec<JoinHandle<()>>,
    /// The Unix socket path to unlink on shutdown, if any.
    unlink: Option<PathBuf>,
}

/// The per-session service configuration: parallelism comes from the
/// session pool, so each session's wave executor runs single-worker.
fn session_cfg(cfg: ServiceConfig) -> ServiceConfig {
    ServiceConfig { workers: 1, ..cfg }
}

fn session_thread(
    rx: Arc<Mutex<Receiver<Stream>>>,
    cfg: ServiceConfig,
    shared: Arc<Shared>,
    opts: ServeOptions,
) {
    loop {
        // Hold the receiver lock only to take one connection.
        let conn = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(conn) = conn else {
            return; // channel closed: server shutting down
        };
        let mut svc = Service::with_shared(cfg, Arc::clone(&shared));
        // Every accepted connection gets a process-unique id: the root
        // of the connection→session→request trace hierarchy.
        let conn_id = next_conn_id();
        svc.set_conn(conn_id);
        shared.metrics().connections.inc();
        shared.tracer().event("connection", svc.trace_ctx(), &[]);
        let (reader, writer) = match conn.try_clone() {
            Ok(r) => (BufReader::new(r), conn),
            Err(_) => continue,
        };
        // Transport errors end this session only (client hung up).
        let _ = serve_with(&mut svc, reader, writer, &opts);
    }
}

impl SocketServer {
    /// Serve the hub over TCP. `addr` is anything `TcpListener::bind`
    /// accepts (`127.0.0.1:0` picks an ephemeral port — read it back
    /// from [`SocketServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Binding or local-address resolution failures.
    pub fn spawn_tcp(
        addr: &str,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
    ) -> io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Self::spawn(
            Listener::Tcp(listener),
            Endpoint::Tcp(local),
            local.to_string(),
            None,
            cfg,
            shared,
            sessions,
            opts,
        )
    }

    /// Serve the hub over a Unix-domain socket at `path`. A stale
    /// socket file from a previous run is removed first; the file is
    /// unlinked again on shutdown.
    ///
    /// # Errors
    ///
    /// Binding failures.
    pub fn spawn_unix(
        path: &Path,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
    ) -> io::Result<SocketServer> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        Self::spawn(
            Listener::Unix(listener),
            Endpoint::Unix(path.to_path_buf()),
            path.display().to_string(),
            Some(path.to_path_buf()),
            cfg,
            shared,
            sessions,
            opts,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn(
        listener: Listener,
        endpoint: Endpoint,
        display_addr: String,
        unlink: Option<PathBuf>,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
    ) -> io::Result<SocketServer> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<Stream>, Receiver<Stream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let cfg = session_cfg(cfg);
        let sessions: Vec<JoinHandle<()>> = (0..sessions.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || session_thread(rx, cfg, shared, opts))
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            // `tx` is moved in: when this loop exits, the channel closes
            // and the session pool drains out.
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok(conn) => {
                        if accept_stop.load(Ordering::SeqCst) || tx.send(conn).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        Ok(SocketServer {
            endpoint,
            display_addr,
            stop,
            accept: Some(accept),
            sessions,
            unlink,
        })
    }

    /// The bound address: `host:port` for TCP (the real port, even if
    /// the server was spawned on port 0), the path for Unix sockets.
    pub fn local_addr(&self) -> &str {
        &self.display_addr
    }

    /// Stop accepting, close the session pool, and join every thread.
    /// In-flight sessions finish when their clients disconnect.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        self.endpoint.poke();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.sessions.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.unlink.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Block until the accept loop exits (it only does on listener
    /// error or [`SocketServer::shutdown`] from another thread) — the
    /// CLI's foreground serving mode.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.sessions.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.unlink.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::protocol::Json;
    use freezeml_core::Options;
    use std::io::{BufRead, BufReader as StdBufReader};

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 2,
        }
    }

    fn request(stream: &mut TcpStream, reader: &mut StdBufReader<TcpStream>, line: &str) -> Json {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(&response).expect("response is JSON")
    }

    #[test]
    fn tcp_smoke_open_type_of_close() {
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::new(Shared::new()),
            2,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        let mut reader = StdBufReader::new(stream.try_clone().unwrap());
        let r = request(
            &mut stream,
            &mut reader,
            r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let r = request(
            &mut stream,
            &mut reader,
            r#"{"cmd":"type-of","doc":"m","name":"x"}"#,
        );
        assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));
        drop(stream);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn sessions_share_the_scheme_cache_but_not_documents() {
        let shared = Arc::new(Shared::new());
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::clone(&shared),
            2,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let text = r##"{"cmd":"open","doc":"d","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##;

        let mut a = TcpStream::connect(&addr).unwrap();
        let mut ra = StdBufReader::new(a.try_clone().unwrap());
        let r = request(&mut a, &mut ra, text);
        assert_eq!(r.get("rechecked"), Some(&Json::Num(2.0)));

        // A second session opens the same doc name: same text is all
        // cache hits (shared hub), but the *document* is its own — the
        // first session's doc is untouched by this open.
        let mut b = TcpStream::connect(&addr).unwrap();
        let mut rb = StdBufReader::new(b.try_clone().unwrap());
        let r = request(&mut b, &mut rb, text);
        assert_eq!(r.get("rechecked"), Some(&Json::Num(0.0)));
        assert_eq!(r.get("reused"), Some(&Json::Num(2.0)));

        // Session b closes its "d"; session a's "d" still answers.
        let r = request(&mut b, &mut rb, r#"{"cmd":"close","doc":"d"}"#);
        assert_eq!(r.get("closed"), Some(&Json::Bool(true)));
        let r = request(&mut a, &mut ra, r#"{"cmd":"type-of","doc":"d","name":"p"}"#);
        assert_eq!(r.get("result").and_then(Json::as_str), Some("Int * Bool"));

        drop((a, ra, b, rb));
        server.shutdown();
    }

    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir().join(format!("freezeml-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.sock");
        let mut server = SocketServer::spawn_unix(
            &path,
            cfg(),
            Arc::new(Shared::new()),
            1,
            ServeOptions::default(),
        )
        .unwrap();
        let mut stream = UnixStream::connect(&path).unwrap();
        writeln!(
            stream,
            r#"{{"cmd":"open","doc":"u","text":"let y = true;;"}}"#
        )
        .unwrap();
        let mut reader = StdBufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(&response).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        drop((stream, reader));
        server.shutdown();
        assert!(!path.exists(), "socket file unlinked on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn more_clients_than_session_threads_all_get_served() {
        // The pool has 1 thread; 4 sequential clients must all be
        // served (the pool drains the accept queue).
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::new(Shared::new()),
            1,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        for i in 0..4 {
            let mut s = TcpStream::connect(&addr).unwrap();
            let mut r = StdBufReader::new(s.try_clone().unwrap());
            let resp = request(
                &mut s,
                &mut r,
                &format!(r#"{{"cmd":"open","doc":"c{i}","text":"let v = {i};;"}}"#),
            );
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "client {i}");
        }
        server.shutdown();
    }
}
