//! The socket front end: the line protocol of [`crate::server`] served
//! over TCP or a Unix-domain socket, many sessions at once.
//!
//! Topology: one accept thread plus a pool of session threads. Every
//! accepted connection becomes one protocol session — a fresh
//! [`Service`] whose documents are private to the connection — but all
//! sessions run against one [`Shared`] hub, so schemes, verdicts, and
//! parsed declarations cross sessions freely: a binding checked for one
//! client is a cache hit for every other client.
//!
//! Concurrency model: with the hub sharded and striped, parallelism
//! comes from *sessions*, not from waves — each connection's executor
//! runs single-worker, and `--max-sessions N` (default `--workers`) on
//! the CLI sizes the session pool. N clients therefore check N
//! documents genuinely concurrently, interning into the scheme bank
//! without a global lock.
//!
//! ## Overload behavior
//!
//! The accept→session queue is **bounded** ([`Admission::max_pending`]).
//! A connection arriving with the queue full is *shed*: it is answered
//! one structured line —
//! `{"ok":false,"error":"overloaded","retry-after-ms":N}` — and closed
//! before any session state is built for it. Shedding at the accept
//! thread keeps the failure cheap (no `Service`, no executor) and
//! honest (the client learns immediately instead of queueing
//! invisibly). Each shed bumps the hub's `requests_shed` counter.
//!
//! ## Drain
//!
//! [`Shared::request_drain`] (the protocol `shutdown` command, or the
//! CLI's SIGTERM/SIGINT handler) flips the hub into draining: the
//! accept loop sheds its next arrival with
//! `{"ok":false,"error":"draining"}` and exits, in-flight requests
//! finish, and session loops close their connections at the next
//! request boundary (their serve loops poll the flag). The foreground
//! [`SocketServer::join_timeout`] then waits up to `--drain-secs` for
//! the pool before handing control back for the final checkpoint.
//!
//! Shutdown: the accept loop polls a nonblocking listener, so
//! [`SocketServer::shutdown`] (also on drop) just sets the stop flag
//! and joins — it exits deterministically even when the listener
//! errored out early, with no throwaway "poke" connection.
//!
//! ## Faults
//!
//! Accepted streams are wrapped in a [`fault`] shim: the `sock.read`
//! and `sock.write` failpoints can truncate, error, delay, or panic at
//! the transport boundary. A panic anywhere in a session (framing
//! included) is contained per connection and counted in
//! `session_thread_deaths` — the pool never shrinks.

use crate::fault::{self, Fault};
use crate::server::{serve_with, ServeOptions};
use crate::service::{Service, ServiceConfig};
use crate::shared::Shared;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::mpsc::{channel, Receiver, Sender};
use crate::sync::{Arc, PoisonError};
use freezeml_obs::lockrank;
use freezeml_obs::next_conn_id;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks its stop/drain flags while the
/// listener is quiet.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Admission-control parameters for the accept thread.
#[derive(Clone, Copy, Debug)]
pub struct Admission {
    /// Accepted connections allowed to wait for a session thread
    /// before new arrivals are shed (`--max-pending`). The count is of
    /// connections *not yet claimed* by a session thread — an arrival
    /// is enqueued before it can be claimed, so `0` sheds every
    /// connection (a test configuration, not a serving one).
    pub max_pending: usize,
    /// The `retry-after-ms` hint shed clients are given.
    pub retry_after_ms: u64,
}

impl Default for Admission {
    fn default() -> Admission {
        Admission {
            max_pending: 64,
            retry_after_ms: 50,
        }
    }
}

/// The admission gate between the accept thread and the session pool:
/// a bounded count of accepted-but-unclaimed connections. Extracted as
/// a standalone type so `tests/model/` can model-check the counting
/// protocol directly: however admitters and claimers interleave,
/// `admitted - claimed` never exceeds the bound and never goes
/// negative, and every arrival is either admitted or shed — none are
/// lost.
pub struct Gate {
    pending: AtomicUsize,
    max_pending: usize,
}

impl Gate {
    /// A gate admitting at most `max_pending` unclaimed connections.
    pub fn new(max_pending: usize) -> Gate {
        Gate {
            pending: AtomicUsize::new(0),
            max_pending,
        }
    }

    /// Try to admit one arrival. `false` means the queue is at its
    /// bound and the arrival must be shed. The check-and-increment is
    /// one atomic RMW, so concurrent admitters can never overshoot the
    /// bound (the old separate load-then-add could, had there been two
    /// accept threads).
    pub fn try_admit(&self) -> bool {
        // ord: Relaxed — the gate is a pure counting protocol over one
        // location; the mpsc channel that carries the connection is the
        // publication edge. RMW atomicity alone bounds the count.
        self.pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.max_pending).then_some(n + 1)
            })
            .is_ok()
    }

    /// A session thread claimed one admitted connection.
    pub fn claimed(&self) {
        // ord: Relaxed — counting protocol over one location; see
        // `try_admit`.
        let prev = self.pending.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "gate claimed with nothing admitted");
    }

    /// Currently admitted-but-unclaimed connections (observability).
    pub fn pending(&self) -> usize {
        // ord: Relaxed — monotonicity-free gauge read.
        self.pending.load(Ordering::Relaxed)
    }
}

/// One accepted connection, transport-erased.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Arm kernel-level read/write timeouts: a stalled or slowloris
    /// peer wakes the serve loop with `WouldBlock`/`TimedOut` instead
    /// of pinning the session thread forever.
    fn set_timeouts(&self, t: Option<Duration>) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.set_read_timeout(t);
                let _ = s.set_write_timeout(t);
            }
            Stream::Unix(s) => {
                let _ = s.set_read_timeout(t);
                let _ = s.set_write_timeout(t);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A [`Stream`] with the `sock.read`/`sock.write` failpoints at the
/// transport boundary: `eof` truncates a read to `Ok(0)`, `err` fails
/// the call, `delay` stalls it, `panic` panics (contained by the
/// session loop and counted as a thread death).
struct FaultStream {
    inner: Stream,
    shared: Arc<Shared>,
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(f) = fault::hit_counted("sock.read", self.shared.metrics()) {
            match f {
                Fault::Eof => return Ok(0),
                other => other.io_effect()?,
            }
        }
        self.inner.read(buf)
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(f) = fault::hit_counted("sock.write", self.shared.metrics()) {
            f.io_effect()?;
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => {
                let (conn, _) = l.accept()?;
                // The listener polls nonblocking; the session must not.
                conn.set_nonblocking(false)?;
                // A line protocol of small messages: never wait for a
                // full segment.
                let _ = conn.set_nodelay(true);
                Stream::Tcp(conn)
            }
            Listener::Unix(l) => {
                let conn = l.accept()?.0;
                conn.set_nonblocking(false)?;
                Stream::Unix(conn)
            }
        })
    }
}

/// A running socket server. See the module docs.
pub struct SocketServer {
    display_addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Vec<JoinHandle<()>>,
    /// The Unix socket path to unlink on shutdown, if any.
    unlink: Option<PathBuf>,
}

/// The per-session service configuration: parallelism comes from the
/// session pool, so each session's wave executor runs single-worker.
fn session_cfg(cfg: ServiceConfig) -> ServiceConfig {
    ServiceConfig { workers: 1, ..cfg }
}

fn session_thread(
    rx: Arc<lockrank::Mutex<Receiver<Stream>>>,
    gate: Arc<Gate>,
    cfg: ServiceConfig,
    shared: Arc<Shared>,
    opts: ServeOptions,
) {
    loop {
        // Hold the receiver lock only to take one connection.
        let conn = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(conn) = conn else {
            return; // channel closed: server shutting down
        };
        gate.claimed();
        conn.set_timeouts(opts.request_timeout_ms.map(Duration::from_millis));
        // Contain *everything* a connection can do to this thread —
        // including panics in protocol framing, outside the executor's
        // per-binding containment. A session that dies takes only its
        // own connection with it; the pool keeps its size, and the
        // death is counted so it can never again pass silently.
        let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut svc = Service::with_shared(cfg, Arc::clone(&shared));
            // Every accepted connection gets a process-unique id: the
            // root of the connection→session→request trace hierarchy.
            let conn_id = next_conn_id();
            svc.set_conn(conn_id);
            shared.metrics().connections.inc();
            shared.tracer().event("connection", svc.trace_ctx(), &[]);
            let (reader, writer) = match conn.try_clone() {
                Ok(r) => (
                    BufReader::new(FaultStream {
                        inner: r,
                        shared: Arc::clone(&shared),
                    }),
                    FaultStream {
                        inner: conn,
                        shared: Arc::clone(&shared),
                    },
                ),
                Err(_) => return,
            };
            // Transport errors end this session only (client hung up).
            let _ = serve_with(&mut svc, reader, writer, &opts);
        }));
        if served.is_err() {
            shared.metrics().session_thread_deaths.inc();
        }
    }
}

/// Answer a shed connection with one structured line and close it. The
/// write gets a short timeout of its own so a malicious peer cannot
/// stall the accept thread.
fn shed(mut conn: Stream, body: &str) {
    conn.set_timeouts(Some(Duration::from_millis(100)));
    let _ = conn.write_all(body.as_bytes());
    let _ = conn.write_all(b"\n");
    let _ = conn.flush();
}

impl SocketServer {
    /// Serve the hub over TCP with default admission control. `addr` is
    /// anything `TcpListener::bind` accepts (`127.0.0.1:0` picks an
    /// ephemeral port — read it back from [`SocketServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Binding or local-address resolution failures.
    pub fn spawn_tcp(
        addr: &str,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
    ) -> io::Result<SocketServer> {
        Self::spawn_tcp_with(addr, cfg, shared, sessions, opts, Admission::default())
    }

    /// [`SocketServer::spawn_tcp`] with explicit admission control.
    ///
    /// # Errors
    ///
    /// Binding or local-address resolution failures.
    pub fn spawn_tcp_with(
        addr: &str,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
        admission: Admission,
    ) -> io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Self::spawn(
            Listener::Tcp(listener),
            local.to_string(),
            None,
            cfg,
            shared,
            sessions,
            opts,
            admission,
        )
    }

    /// Serve the hub over a Unix-domain socket at `path` with default
    /// admission control. A stale socket file from a previous run is
    /// removed first; the file is unlinked again on shutdown.
    ///
    /// # Errors
    ///
    /// Binding failures.
    pub fn spawn_unix(
        path: &Path,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
    ) -> io::Result<SocketServer> {
        Self::spawn_unix_with(path, cfg, shared, sessions, opts, Admission::default())
    }

    /// [`SocketServer::spawn_unix`] with explicit admission control.
    ///
    /// # Errors
    ///
    /// Binding failures.
    pub fn spawn_unix_with(
        path: &Path,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
        admission: Admission,
    ) -> io::Result<SocketServer> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        Self::spawn(
            Listener::Unix(listener),
            path.display().to_string(),
            Some(path.to_path_buf()),
            cfg,
            shared,
            sessions,
            opts,
            admission,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn(
        listener: Listener,
        display_addr: String,
        unlink: Option<PathBuf>,
        cfg: ServiceConfig,
        shared: Arc<Shared>,
        sessions: usize,
        opts: ServeOptions,
        admission: Admission,
    ) -> io::Result<SocketServer> {
        listener.set_nonblocking()?;
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate::new(admission.max_pending));
        let (tx, rx): (Sender<Stream>, Receiver<Stream>) = channel();
        let rx = Arc::new(lockrank::Mutex::new(
            lockrank::SESSION_RX,
            "service.sock.session_rx",
            rx,
        ));
        let cfg = session_cfg(cfg);
        let sessions: Vec<JoinHandle<()>> = (0..sessions.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let gate = Arc::clone(&gate);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || session_thread(rx, gate, cfg, shared, opts))
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let overloaded = format!(
            r#"{{"ok":false,"error":"overloaded","retry-after-ms":{}}}"#,
            admission.retry_after_ms
        );
        let accept = std::thread::spawn(move || {
            // `tx` is moved in: when this loop exits, the channel
            // closes and the session pool drains out. The listener is
            // nonblocking, so the stop and drain flags are observed
            // within one poll interval — deterministically, even if the
            // listener itself has failed.
            loop {
                // ord: Relaxed — poll-loop stop flag: only eventual
                // visibility is needed, and `shutdown` joins this
                // thread (a full synchronization) before observing any
                // of its effects.
                if accept_stop.load(Ordering::Relaxed) {
                    return;
                }
                let conn = match listener.accept() {
                    Ok(conn) => conn,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if accept_shared.draining() {
                            return;
                        }
                        std::thread::park_timeout(ACCEPT_POLL);
                        continue;
                    }
                    Err(_) => return,
                };
                // ord: Relaxed — same poll-loop stop flag as above.
                if accept_stop.load(Ordering::Relaxed) {
                    return;
                }
                if accept_shared.draining() {
                    accept_shared.metrics().requests_shed.inc();
                    shed(conn, r#"{"ok":false,"error":"draining"}"#);
                    return;
                }
                // Admission control: the queue between accept and the
                // session pool is bounded. Over the bound, the client
                // gets a structured answer *now* instead of an
                // invisible wait.
                if !gate.try_admit() {
                    accept_shared.metrics().requests_shed.inc();
                    shed(conn, &overloaded);
                    continue;
                }
                if tx.send(conn).is_err() {
                    return;
                }
            }
        });
        Ok(SocketServer {
            display_addr,
            stop,
            accept: Some(accept),
            sessions,
            unlink,
        })
    }

    /// The bound address: `host:port` for TCP (the real port, even if
    /// the server was spawned on port 0), the path for Unix sockets.
    pub fn local_addr(&self) -> &str {
        &self.display_addr
    }

    /// Stop accepting, close the session pool, and join every thread.
    /// In-flight sessions finish when their clients disconnect.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        // ord: Relaxed — the join below is the synchronization point;
        // the flag only has to become visible within one poll interval.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.sessions.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.unlink.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Block until the accept loop exits (listener error, drain, or
    /// [`SocketServer::shutdown`] from another thread) and every
    /// session thread finishes — the CLI's foreground serving mode
    /// with an unbounded wind-down.
    pub fn join(self) {
        self.join_timeout(None);
    }

    /// [`SocketServer::join`] with a bounded wind-down: after the
    /// accept loop exits, wait at most `limit` for the session pool
    /// (`--drain-secs`). Returns `true` if every session finished;
    /// stragglers (clients that never hung up) are abandoned to die
    /// with the process.
    pub fn join_timeout(mut self, limit: Option<Duration>) -> bool {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let deadline = limit.map(|d| Instant::now() + d);
        let mut all = true;
        for h in self.sessions.drain(..) {
            match deadline {
                None => {
                    let _ = h.join();
                }
                Some(deadline) => {
                    while !h.is_finished() && Instant::now() < deadline {
                        std::thread::park_timeout(Duration::from_millis(20));
                    }
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        all = false;
                    }
                }
            }
        }
        if let Some(path) = self.unlink.take() {
            let _ = std::fs::remove_file(path);
        }
        all
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::protocol::Json;
    use freezeml_core::Options;
    use std::io::{BufRead, BufReader as StdBufReader};

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 2,
        }
    }

    fn request(stream: &mut TcpStream, reader: &mut StdBufReader<TcpStream>, line: &str) -> Json {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(&response).expect("response is JSON")
    }

    #[test]
    fn tcp_smoke_open_type_of_close() {
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::new(Shared::new()),
            2,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        let mut reader = StdBufReader::new(stream.try_clone().unwrap());
        let r = request(
            &mut stream,
            &mut reader,
            r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let r = request(
            &mut stream,
            &mut reader,
            r#"{"cmd":"type-of","doc":"m","name":"x"}"#,
        );
        assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));
        drop(stream);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn sessions_share_the_scheme_cache_but_not_documents() {
        let shared = Arc::new(Shared::new());
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::clone(&shared),
            2,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let text = r##"{"cmd":"open","doc":"d","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##;

        let mut a = TcpStream::connect(&addr).unwrap();
        let mut ra = StdBufReader::new(a.try_clone().unwrap());
        let r = request(&mut a, &mut ra, text);
        assert_eq!(r.get("rechecked"), Some(&Json::Num(2.0)));

        // A second session opens the same doc name: same text is all
        // cache hits (shared hub), but the *document* is its own — the
        // first session's doc is untouched by this open.
        let mut b = TcpStream::connect(&addr).unwrap();
        let mut rb = StdBufReader::new(b.try_clone().unwrap());
        let r = request(&mut b, &mut rb, text);
        assert_eq!(r.get("rechecked"), Some(&Json::Num(0.0)));
        assert_eq!(r.get("reused"), Some(&Json::Num(2.0)));

        // Session b closes its "d"; session a's "d" still answers.
        let r = request(&mut b, &mut rb, r#"{"cmd":"close","doc":"d"}"#);
        assert_eq!(r.get("closed"), Some(&Json::Bool(true)));
        let r = request(&mut a, &mut ra, r#"{"cmd":"type-of","doc":"d","name":"p"}"#);
        assert_eq!(r.get("result").and_then(Json::as_str), Some("Int * Bool"));

        drop((a, ra, b, rb));
        server.shutdown();
    }

    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir().join(format!("freezeml-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.sock");
        let mut server = SocketServer::spawn_unix(
            &path,
            cfg(),
            Arc::new(Shared::new()),
            1,
            ServeOptions::default(),
        )
        .unwrap();
        let mut stream = UnixStream::connect(&path).unwrap();
        writeln!(
            stream,
            r#"{{"cmd":"open","doc":"u","text":"let y = true;;"}}"#
        )
        .unwrap();
        let mut reader = StdBufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(&response).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        drop((stream, reader));
        server.shutdown();
        assert!(!path.exists(), "socket file unlinked on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn more_clients_than_session_threads_all_get_served() {
        // The pool has 1 thread; 4 sequential clients must all be
        // served (the pool drains the accept queue).
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::new(Shared::new()),
            1,
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        for i in 0..4 {
            let mut s = TcpStream::connect(&addr).unwrap();
            let mut r = StdBufReader::new(s.try_clone().unwrap());
            let resp = request(
                &mut s,
                &mut r,
                &format!(r#"{{"cmd":"open","doc":"c{i}","text":"let v = {i};;"}}"#),
            );
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "client {i}");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_deterministic_without_any_client_poke() {
        // Regression (the old implementation "poked" the listener with
        // a throwaway connection, which raced when the listener had
        // already failed): shutdown must return promptly with no help
        // from the network, repeatedly, and immediately after spawn.
        for _ in 0..3 {
            let mut server = SocketServer::spawn_tcp(
                "127.0.0.1:0",
                cfg(),
                Arc::new(Shared::new()),
                2,
                ServeOptions::default(),
            )
            .unwrap();
            let t0 = Instant::now();
            server.shutdown();
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "shutdown stalled: {:?}",
                t0.elapsed()
            );
            // Idempotent.
            server.shutdown();
        }
    }

    #[test]
    fn over_max_pending_connections_are_shed_with_retry_after() {
        // 1 session thread, queue of 1: with the session held busy and
        // the queue full, the next arrival must be answered
        // `overloaded` with a retry hint, not silently queued.
        let shared = Arc::new(Shared::new());
        let mut server = SocketServer::spawn_tcp_with(
            "127.0.0.1:0",
            cfg(),
            Arc::clone(&shared),
            1,
            ServeOptions::default(),
            Admission {
                max_pending: 1,
                retry_after_ms: 25,
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        // Hold the only session thread with an open connection (the
        // answered request proves the session claimed it, so the
        // pending queue is empty again).
        let mut busy = TcpStream::connect(&addr).unwrap();
        let mut busy_r = StdBufReader::new(busy.try_clone().unwrap());
        let r = request(
            &mut busy,
            &mut busy_r,
            r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        // This connection fills the queue (no session is free to claim
        // it)…
        let _queued = TcpStream::connect(&addr).unwrap();
        // …so the one after it is shed at the accept thread.
        let extra = TcpStream::connect(&addr).unwrap();
        let mut line = String::new();
        let mut extra_r = StdBufReader::new(extra);
        extra_r.read_line(&mut line).unwrap();
        let v = Json::parse(line.trim_end()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            v.get("retry-after-ms").and_then(Json::as_num),
            Some(25.0),
            "the hint mirrors the admission config"
        );
        // …and the line is followed by a clean close.
        assert_eq!(extra_r.read_line(&mut line).unwrap(), 0);
        assert!(shared.metrics().requests_shed.get() >= 1);
        // The busy session was untouched by the shed.
        let r = request(
            &mut busy,
            &mut busy_r,
            r#"{"cmd":"type-of","doc":"m","name":"x"}"#,
        );
        assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));
        // Close the held connections before shutdown: the queued one
        // will be claimed by the freed session thread, and shutdown
        // joins that thread, which only returns once its client is
        // gone.
        drop((busy, busy_r, _queued));
        server.shutdown();
    }

    #[test]
    fn a_drain_request_stops_the_accept_loop_and_join_returns() {
        let shared = Arc::new(Shared::new());
        let server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            cfg(),
            Arc::clone(&shared),
            2,
            ServeOptions {
                request_timeout_ms: Some(200),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        // An in-flight session…
        let mut live = TcpStream::connect(&addr).unwrap();
        let mut live_r = StdBufReader::new(live.try_clone().unwrap());
        let r = request(
            &mut live,
            &mut live_r,
            r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        // …then a drain. The foreground join must come back even
        // though the live client never hangs up (its serve loop closes
        // at the next request-timeout boundary).
        shared.request_drain();
        assert_eq!(shared.metrics().snapshot().draining, 1);
        let all = server.join_timeout(Some(Duration::from_secs(5)));
        assert!(all, "sessions wound down within the drain budget");
        // The drained server's client sees a clean close.
        let mut line = String::new();
        assert_eq!(live_r.read_line(&mut line).unwrap(), 0, "clean close");
    }
}
