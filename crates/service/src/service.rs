//! The long-lived service: named documents, incremental rechecking, and
//! the shared scheme cache.
//!
//! A [`Service`] owns the worker pool ([`crate::exec::Executor`]) and one
//! scheme cache shared by every document — keys fingerprint the binding,
//! its transitive dependencies, and the checker configuration
//! ([`crate::db`]), so sharing is sound and lets documents with common
//! bindings (or a document edited back and forth) reuse each other's
//! work.
//!
//! ```
//! use freezeml_service::{Service, ServiceConfig};
//!
//! let mut svc = Service::new(ServiceConfig::default());
//! let r = svc.open("demo", "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n").unwrap();
//! assert!(r.all_typed());
//! assert_eq!(r.rechecked, 2);
//!
//! // A warm edit re-infers only the dirty cone.
//! let r = svc
//!     .edit("demo", "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\nlet q = 1;;\n")
//!     .unwrap();
//! assert_eq!((r.rechecked, r.reused), (1, 2));
//! ```

use crate::db::{analyze_cached_traced, doc_key, doc_verify, Analysis, EngineSel, Outcome};
use crate::exec::{BindingReport, CheckReport, Executor, INTERNAL_ERROR_CLASS};
use crate::persist::{self, LoadOutcome, PersistConfig, SaveOutcome};
use crate::shared::Shared;
use crate::sync::Arc;
use freezeml_core::{Options, ParseError};
use freezeml_obs::{next_session_id, TraceCtx};
use std::cell::OnceCell;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Checker options (value restriction, instantiation strategy).
    pub opts: Options,
    /// Engine selection (`core`, `uf`, or differential `both`).
    pub engine: EngineSel,
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::default(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        }
    }
}

/// A service-level failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The named document was never opened (or already closed).
    UnknownDoc(String),
    /// The document text is not a well-formed program.
    Parse(ParseError),
    /// Elaboration could not run or failed its soundness obligations
    /// (binding ill-typed or blocked, oracle rejection, engine
    /// disagreement).
    Elaborate(String),
    /// The request's time budget ran out before the check finished
    /// (`--request-timeout-ms`, enforced at wave boundaries). Work
    /// already completed stays cached, so a retry resumes warm.
    Deadline,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDoc(d) => write!(f, "unknown document `{d}`"),
            ServiceError::Parse(e) => write!(f, "{e}"),
            ServiceError::Elaborate(e) => write!(f, "cannot elaborate: {e}"),
            ServiceError::Deadline => write!(f, "deadline"),
        }
    }
}

impl std::error::Error for ServiceError {}

struct Document {
    text: String,
    /// The analysis, computed lazily: a document served wholesale from
    /// the document-report cache never parses at all — the analysis is
    /// built on first demand (an edit, `elaborate`, a doc-cache miss).
    analysis: OnceCell<Result<Analysis, ParseError>>,
    report: Option<Arc<CheckReport>>,
}

impl Document {
    fn analyzed(
        &self,
        shared: &Shared,
        opts: &Options,
        engine: EngineSel,
        ctx: TraceCtx,
    ) -> &Result<Analysis, ParseError> {
        self.analysis.get_or_init(|| {
            let tracer = shared.tracer().clone();
            let mut frontend = shared.frontend();
            analyze_cached_traced(&mut frontend, &self.text, opts, engine, &tracer, ctx)
        })
    }
}

/// A document report recast as what a fully warm pass would produce:
/// every binding served from cache, no inference waves. This is the
/// form the document-report cache stores, so a hit is indistinguishable
/// from a perfectly warm per-binding pass.
fn warmed(report: &CheckReport) -> CheckReport {
    CheckReport {
        bindings: report.bindings.clone(),
        rechecked: 0,
        reused: report.bindings.len(),
        blocked: 0,
        waves: 0,
    }
}

/// May this report be served to other sessions? Same rule as the
/// per-binding cache: disagreements and internal errors are checker
/// bugs and must never be cached.
fn report_cacheable(report: &CheckReport) -> bool {
    report.bindings.iter().all(|b| match &b.outcome {
        Outcome::Disagreement { .. } => false,
        Outcome::Error { class, .. } => class != INTERNAL_ERROR_CLASS,
        _ => true,
    })
}

/// The program-checking service. See the module docs.
pub struct Service {
    cfg: ServiceConfig,
    exec: Executor,
    docs: HashMap<String, Document>,
    /// The cross-session hub: scheme bank, outcome cache, parse cache.
    /// A standalone service owns a private hub; socket sessions share
    /// one ([`Service::with_shared`]).
    shared: Arc<Shared>,
    /// Where to persist the hub's warm state, when `--cache-dir` is on.
    persist_cfg: Option<PersistConfig>,
    /// This session's trace ids: `conn` is 0 for stdio services until
    /// [`Service::set_conn`], `sess` is process-unique, `req` counts
    /// requests ([`Service::begin_request`]).
    ctx: TraceCtx,
    /// The current request's time budget, set by the serve loop
    /// ([`Service::set_deadline`]); checked at executor wave
    /// boundaries. `None` (the default, and always for direct API use)
    /// means unbudgeted.
    deadline: Option<Instant>,
}

impl Service {
    /// A service with the given configuration and a private hub.
    pub fn new(cfg: ServiceConfig) -> Service {
        Service::with_shared(cfg, Arc::new(Shared::new()))
    }

    /// A service running against an existing hub — the socket server's
    /// per-connection constructor. Documents stay session-private;
    /// schemes, verdicts, and parsed declarations are shared. Sound for
    /// mixed configurations: cache keys fingerprint the options and
    /// engine ([`crate::db`]).
    pub fn with_shared(cfg: ServiceConfig, shared: Arc<Shared>) -> Service {
        shared.metrics().sessions.inc();
        Service {
            exec: Executor::new(cfg.workers, cfg.opts, cfg.engine),
            cfg,
            docs: HashMap::new(),
            shared,
            persist_cfg: None,
            ctx: TraceCtx {
                conn: 0,
                sess: next_session_id(),
                req: 0,
            },
            deadline: None,
        }
    }

    /// Attach the socket connection id this session serves (trace
    /// hierarchy: connection → session → request).
    pub fn set_conn(&mut self, conn: u64) {
        self.ctx.conn = conn;
    }

    /// Start a new request: bump the per-session request id and return
    /// the trace context request-scoped emit sites should carry.
    pub fn begin_request(&mut self) -> TraceCtx {
        self.ctx.req += 1;
        self.ctx
    }

    /// The current trace context (ids of the request most recently
    /// begun).
    pub fn trace_ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Set (or clear) the current request's deadline. The serve loop
    /// calls this per request with `now + --request-timeout-ms`; the
    /// executor checks it at wave boundaries and answers
    /// [`ServiceError::Deadline`] when it passes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Fold a produced or served report into the hub's metrics
    /// registry — every report a client sees is counted exactly once,
    /// whether it came off the executor, the document-report cache, or
    /// a persisted snapshot.
    fn note_report(&self, report: &CheckReport) {
        let m = self.shared.metrics();
        m.bindings.add(report.bindings.len() as u64);
        m.rechecked.add(report.rechecked as u64);
        m.reused.add(report.reused as u64);
        m.blocked.add(report.blocked as u64);
        m.waves.add(report.waves as u64);
    }

    /// Attach an on-disk cache directory: load any valid snapshot into
    /// the hub now, and remember the location so [`Service::save_cache`]
    /// can write back. Loading never fails — a missing, corrupt, or
    /// stale-epoch snapshot reports a cold start in the returned
    /// [`LoadOutcome`] and the service proceeds as if there were no
    /// cache.
    pub fn attach_cache(&mut self, cfg: PersistConfig) -> LoadOutcome {
        let out = persist::load(&self.shared, persist::epoch(&self.cfg.opts), &cfg);
        self.persist_cfg = Some(cfg);
        out
    }

    /// Snapshot the hub's warm state to the attached cache directory.
    /// `None` when no cache is attached.
    ///
    /// # Errors
    ///
    /// `Some(Err(..))` on I/O failure — the previous snapshot, if any,
    /// is left intact (writes are temp-file + atomic rename).
    pub fn save_cache(&self) -> Option<std::io::Result<SaveOutcome>> {
        let cfg = self.persist_cfg.as_ref()?;
        Some(persist::save(
            &self.shared,
            persist::epoch(&self.cfg.opts),
            cfg,
        ))
    }

    /// Cache entries evicted by the persistence layer (size cap).
    pub fn evictions(&self) -> u64 {
        self.shared.evictions()
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The hub this service runs against.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Scheme-cache size (for observability).
    pub fn cache_len(&self) -> usize {
        self.shared.cache().len()
    }

    /// Tree/string materialisations the shared scheme bank has
    /// performed — the zonk counter. `type-of` on an unchanged binding
    /// and warm `check` passes must not move it: schemes are served as
    /// memoised `Arc` renderings keyed by [`freezeml_engine::SchemeId`].
    pub fn scheme_renders(&self) -> u64 {
        self.shared.bank().renders()
    }

    /// Renderings served from the scheme bank's per-id memo.
    pub fn scheme_render_hits(&self) -> u64 {
        self.shared.bank().render_hits()
    }

    /// Interned scheme nodes in the shared bank (observability).
    pub fn scheme_nodes(&self) -> usize {
        self.shared.bank().len()
    }

    fn set_text(&mut self, doc: &str, text: &str) -> Result<&CheckReport, ServiceError> {
        // Document-report fast path: a text already checked under this
        // configuration — by this session, another session on the hub,
        // or a previous process via the persisted cache — is served
        // without parsing, analysing, or scheduling anything.
        let dkey = doc_key(text, &self.cfg.opts, self.cfg.engine);
        let probed = {
            let _sp = self.shared.tracer().span("cache-probe", self.ctx);
            self.shared.doc_report(dkey, doc_verify(text))
        };
        if let Some(report) = probed {
            self.note_report(&report);
            let entry = self.docs.entry(doc.to_string()).or_insert(Document {
                text: String::new(),
                analysis: OnceCell::new(),
                report: None,
            });
            if entry.text != text {
                entry.text = text.to_string();
                entry.analysis = OnceCell::new();
            }
            entry.report = Some(report);
            // lint: allow(unwrap) — stored on the line above
            return Ok(entry.report.as_deref().expect("just stored"));
        }
        let analyzed = {
            let tracer = self.shared.tracer().clone();
            let mut frontend = self.shared.frontend();
            analyze_cached_traced(
                &mut frontend,
                text,
                &self.cfg.opts,
                self.cfg.engine,
                &tracer,
                self.ctx,
            )
        };
        match analyzed {
            Ok(analysis) => {
                let cell = OnceCell::new();
                cell.set(Ok(analysis)).ok();
                self.docs.insert(
                    doc.to_string(),
                    Document {
                        text: text.to_string(),
                        analysis: cell,
                        report: None,
                    },
                );
                self.check(doc)
            }
            Err(e) => {
                // Last-good-state serving: a text that does not parse is
                // reported but does not destroy an open document's
                // analysis — `check`/`type-of` keep answering from the
                // previous good text. A *fresh* document opened with bad
                // text is recorded so a follow-up `edit` is legal.
                let cell = OnceCell::new();
                cell.set(Err(e.clone())).ok();
                self.docs.entry(doc.to_string()).or_insert(Document {
                    text: text.to_string(),
                    analysis: cell,
                    report: None,
                });
                Err(ServiceError::Parse(e))
            }
        }
    }

    /// Open (or replace) a document and check it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Parse`] when the text is not a program.
    pub fn open(&mut self, doc: &str, text: &str) -> Result<&CheckReport, ServiceError> {
        self.set_text(doc, text)
    }

    /// Replace an open document's text and recheck it incrementally —
    /// bindings whose cache keys are unchanged are served from the
    /// scheme cache.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDoc`] for never-opened documents,
    /// [`ServiceError::Parse`] for malformed text.
    pub fn edit(&mut self, doc: &str, text: &str) -> Result<&CheckReport, ServiceError> {
        if !self.docs.contains_key(doc) {
            return Err(ServiceError::UnknownDoc(doc.to_string()));
        }
        self.set_text(doc, text)
    }

    /// (Re)check a document. With a warm cache this is nearly free.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDoc`] / [`ServiceError::Parse`].
    pub fn check(&mut self, doc: &str) -> Result<&CheckReport, ServiceError> {
        let entry = self
            .docs
            .get_mut(doc)
            .ok_or_else(|| ServiceError::UnknownDoc(doc.to_string()))?;
        let dkey = doc_key(&entry.text, &self.cfg.opts, self.cfg.engine);
        let dverify = doc_verify(&entry.text);
        let probed = {
            let _sp = self.shared.tracer().span("cache-probe", self.ctx);
            self.shared.doc_report(dkey, dverify)
        };
        if let Some(report) = probed {
            let m = self.shared.metrics();
            m.bindings.add(report.bindings.len() as u64);
            m.rechecked.add(report.rechecked as u64);
            m.reused.add(report.reused as u64);
            m.blocked.add(report.blocked as u64);
            m.waves.add(report.waves as u64);
            entry.report = Some(report);
            // lint: allow(unwrap) — stored on the line above
            return Ok(entry.report.as_deref().expect("just stored"));
        }
        match entry.analyzed(&self.shared, &self.cfg.opts, self.cfg.engine, self.ctx) {
            Err(e) => Err(ServiceError::Parse(e.clone())),
            Ok(a) => {
                let report = self
                    .exec
                    .run_budgeted(a, &self.shared, self.ctx, self.deadline)
                    .map_err(|_| ServiceError::Deadline)?;
                // (inline `note_report`: `entry` still borrows `docs`)
                let m = self.shared.metrics();
                m.bindings.add(report.bindings.len() as u64);
                m.rechecked.add(report.rechecked as u64);
                m.reused.add(report.reused as u64);
                m.blocked.add(report.blocked as u64);
                m.waves.add(report.waves as u64);
                if report_cacheable(&report) {
                    self.shared
                        .record_doc_report(dkey, dverify, Arc::new(warmed(&report)));
                }
                entry.report = Some(Arc::new(report));
                // lint: allow(unwrap) — stored on the line above
                Ok(entry.report.as_deref().expect("just stored"))
            }
        }
    }

    /// The latest report for a document, if it has been checked.
    pub fn report(&self, doc: &str) -> Option<&CheckReport> {
        self.docs.get(doc).and_then(|d| d.report.as_deref())
    }

    /// A document's current text.
    pub fn text(&self, doc: &str) -> Option<&str> {
        self.docs.get(doc).map(|d| d.text.as_str())
    }

    /// The visible (latest) binding of `name` in a checked document.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDoc`] when the document is not open.
    pub fn type_of(&self, doc: &str, name: &str) -> Result<Option<&BindingReport>, ServiceError> {
        let entry = self
            .docs
            .get(doc)
            .ok_or_else(|| ServiceError::UnknownDoc(doc.to_string()))?;
        Ok(entry.report.as_ref().and_then(|r| r.binding(name)))
    }

    /// Close a document. Returns whether it was open. The scheme cache
    /// is retained — reopening is warm.
    pub fn close(&mut self, doc: &str) -> bool {
        self.docs.remove(doc).is_some()
    }

    /// Elaborate the visible (latest) binding of `name` into System F —
    /// evidence, end to end: the binding's probe term is elaborated on
    /// the configured engine(s) under the schemes of its dependencies,
    /// the image is **verified against the `freezeml_systemf` typing
    /// oracle** (it must typecheck at a type α-equivalent to the
    /// binding's scheme) before it is served, and under
    /// [`EngineSel::Both`] the two pipelines' canonical images must be
    /// identical with agreeing evaluation. `Ok(None)` when the name has
    /// no binding in the document.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDoc`] / [`ServiceError::Parse`] for the
    /// usual document failures, [`ServiceError::Elaborate`] when the
    /// binding (or a dependency) is not well typed or an elaboration
    /// obligation fails — the latter is a checker bug, surfaced loudly.
    pub fn elaborate(&self, doc: &str, name: &str) -> Result<Option<ElabInfo>, ServiceError> {
        use freezeml_translate::elaborate::{check_sound, images_agree};
        use freezeml_translate::ElabEngine;

        let _sp = self.shared.tracer().span("elaborate", self.ctx);
        let entry = self
            .docs
            .get(doc)
            .ok_or_else(|| ServiceError::UnknownDoc(doc.to_string()))?;
        let a = match entry.analyzed(&self.shared, &self.cfg.opts, self.cfg.engine, self.ctx) {
            Ok(a) => a,
            Err(e) => return Err(ServiceError::Parse(e.clone())),
        };
        let report = entry.report.as_ref().ok_or_else(|| {
            ServiceError::Elaborate("the document has not been checked".to_string())
        })?;
        let Some(i) = a.decls.iter().rposition(|d| d.name() == name) else {
            return Ok(None);
        };
        let must_be_typed = |j: usize| -> Result<(), ServiceError> {
            match &report.bindings[j].outcome {
                Outcome::Typed { .. } => Ok(()),
                other => Err(ServiceError::Elaborate(format!(
                    "binding `{}` is not well typed: {}",
                    report.bindings[j].name,
                    other.display()
                ))),
            }
        };
        must_be_typed(i)?;
        let Outcome::Typed {
            scheme: binding_scheme,
            ..
        } = &report.bindings[i].outcome
        else {
            unreachable!("checked typed above")
        };
        let binding_scheme = binding_scheme.to_string();
        // Dependency schemes enter the environment as materialised
        // trees, and the request re-infers through the one-shot engine
        // entry points (this is a protocol-boundary operation, like
        // type-of's rendering — the hot check path never comes here).
        let mut env = if a.uses_prelude {
            freezeml_corpus::figure2()
        } else {
            freezeml_core::TypeEnv::new()
        };
        let bank = self.shared.bank();
        for &d in &a.deps[i] {
            must_be_typed(d)?;
            let Outcome::Typed { id, .. } = &report.bindings[d].outcome else {
                unreachable!("checked typed above")
            };
            env.push(
                freezeml_core::Var::from_symbol(a.decls[d].name_sym()),
                bank.to_type(*id),
            );
        }
        let term = a.decls[i].probe_term();
        let elab = |e: ElabEngine| {
            check_sound(e, &env, &term, &self.cfg.opts).map_err(ServiceError::Elaborate)
        };
        let checked = match self.cfg.engine {
            EngineSel::Core => elab(ElabEngine::Core)?,
            EngineSel::Uf => elab(ElabEngine::Uf)?,
            EngineSel::Both => {
                let core = elab(ElabEngine::Core)?;
                let uf = elab(ElabEngine::Uf)?;
                images_agree(&core, &uf).map_err(ServiceError::Elaborate)?;
                core
            }
        };
        // The type is served from the binding's memoised scheme
        // rendering — byte-identical to `type-of`'s output; the oracle
        // already certified the image's type α-equivalent to it.
        Ok(Some(ElabInfo {
            name: name.to_string(),
            fterm: checked.rendered,
            ty: binding_scheme,
        }))
    }
}

/// A verified elaboration served by [`Service::elaborate`].
#[derive(Clone, Debug, PartialEq)]
pub struct ElabInfo {
    /// The binding's name.
    pub name: String,
    /// The canonical rendering of the System F image (already past the
    /// typing oracle).
    pub fterm: String,
    /// The image's type (α-equivalent to the binding's scheme).
    pub ty: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(engine: EngineSel) -> Service {
        Service::new(ServiceConfig {
            opts: Options::default(),
            engine,
            workers: 2,
        })
    }

    #[test]
    fn open_edit_check_type_of_close_lifecycle() {
        let mut s = svc(EngineSel::Both);
        let r = s
            .open("d", "#use prelude\nlet f = fun x -> x;;\nlet n = f 3;;\n")
            .unwrap();
        assert!(r.all_typed());
        assert_eq!(r.rechecked, 2);
        assert_eq!(
            s.type_of("d", "f").unwrap().unwrap().outcome.display(),
            "forall a. a -> a"
        );
        assert!(s.type_of("d", "zzz").unwrap().is_none());

        // Checking again is pure reuse.
        let r = s.check("d").unwrap();
        assert_eq!((r.rechecked, r.reused), (0, 2));

        // Edit only `n`.
        let r = s
            .edit("d", "#use prelude\nlet f = fun x -> x;;\nlet n = f 4;;\n")
            .unwrap();
        assert_eq!((r.rechecked, r.reused), (1, 1));

        assert!(s.close("d"));
        assert!(!s.close("d"));
        assert_eq!(
            s.check("d").err(),
            Some(ServiceError::UnknownDoc("d".into()))
        );
    }

    #[test]
    fn type_of_serves_cached_schemes_without_rezonking() {
        // The satellite micro-fix: an unchanged binding's scheme is
        // served from the per-SchemeId memo — repeated `type-of` and
        // warm `check` passes perform zero tree/string materialisations.
        let mut s = svc(EngineSel::Uf);
        s.open(
            "d",
            "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n",
        )
        .unwrap();
        let renders_cold = s.scheme_renders();
        assert!(renders_cold > 0, "cold check renders each scheme once");
        for _ in 0..5 {
            let b = s.type_of("d", "f").unwrap().unwrap();
            assert_eq!(b.outcome.display(), "forall a. a -> a");
            let b = s.type_of("d", "p").unwrap().unwrap();
            assert_eq!(b.outcome.display(), "Int * Bool");
        }
        let warm = s.check("d").unwrap();
        assert_eq!((warm.rechecked, warm.reused), (0, 2));
        assert_eq!(
            s.scheme_renders(),
            renders_cold,
            "type-of and warm checks never re-zonk"
        );
        // Re-inferring an identical binding in a new document reuses the
        // rendered scheme too (the α-canonical id is the memo key).
        s.open("e", "#use prelude\nlet g = fun y -> y;;\n").unwrap();
        assert_eq!(
            s.type_of("e", "g").unwrap().unwrap().outcome.display(),
            "forall a. a -> a"
        );
        assert_eq!(s.scheme_renders(), renders_cold, "α-equal scheme: memo hit");
        assert!(s.scheme_render_hits() > 0);
        assert!(s.scheme_nodes() > 0);
    }

    #[test]
    fn alpha_equal_schemes_render_canonically_across_documents() {
        // Regression: SchemeIds are α-classes shared service-wide, so
        // the rendering must be canonical — one binding's annotation
        // names must never leak into another binding's output through
        // the shared scheme store's render memo.
        let mut s = svc(EngineSel::Uf);
        s.open("a", "let g = fun (x : forall z. z -> z) -> x;;\n")
            .unwrap();
        s.open("b", "let f = fun (x : forall a. a -> a) -> x;;\n")
            .unwrap();
        // (the plain `x` occurrence instantiates, so the parameter's
        // polytype guards the annotation and the result generalises)
        let want = "forall a. (forall b. b -> b) -> a -> a";
        assert_eq!(
            s.type_of("a", "g").unwrap().unwrap().outcome.display(),
            want
        );
        assert_eq!(
            s.type_of("b", "f").unwrap().unwrap().outcome.display(),
            want
        );
    }

    #[test]
    fn elaborate_runs_the_differential_under_both_engines() {
        let mut s = svc(EngineSel::Both);
        s.open(
            "d",
            "#use prelude\n\
             let f = fun x -> x;;\n\
             let g = $(fun y -> y);;\n\
             let p = poly ~f;;\n\
             let n = plus (fst p) 1;;\n",
        )
        .unwrap();
        for (name, ty) in [
            ("f", "forall a. a -> a"),
            ("g", "forall a. a -> a"),
            ("p", "Int * Bool"),
            ("n", "Int"),
        ] {
            let e = s.elaborate("d", name).unwrap().unwrap();
            assert_eq!(e.ty, ty, "{name}: {}", e.fterm);
        }
        assert_eq!(
            s.elaborate("d", "f").unwrap().unwrap().fterm,
            "tyfun a -> fun (x : a) -> x"
        );
        assert!(s.elaborate("d", "zzz").unwrap().is_none());
        assert!(matches!(
            s.elaborate("nope", "f"),
            Err(ServiceError::UnknownDoc(_))
        ));
    }

    #[test]
    fn parse_errors_are_reported_not_cached() {
        let mut s = svc(EngineSel::Uf);
        let e = s.open("d", "let x = ;;").unwrap_err();
        assert!(matches!(e, ServiceError::Parse(_)));
        // The document stays open; a fixed edit works.
        let r = s.edit("d", "let x = 3;;").unwrap();
        assert!(r.all_typed());
    }

    #[test]
    fn a_broken_edit_keeps_serving_the_last_good_state() {
        let mut s = svc(EngineSel::Uf);
        s.open("d", "let x = 3;;").unwrap();
        let e = s.edit("d", "let x = ;;").unwrap_err();
        assert!(matches!(e, ServiceError::Parse(_)));
        // The last good text, report, and per-binding info survive.
        assert_eq!(s.text("d"), Some("let x = 3;;"));
        assert_eq!(
            s.type_of("d", "x").unwrap().unwrap().outcome.display(),
            "Int"
        );
        let r = s.check("d").unwrap();
        assert_eq!((r.rechecked, r.reused), (0, 1));
    }

    #[test]
    fn edit_requires_an_open_document() {
        let mut s = svc(EngineSel::Uf);
        assert!(matches!(
            s.edit("nope", "let x = 1;;"),
            Err(ServiceError::UnknownDoc(_))
        ));
    }

    #[test]
    fn the_cache_is_shared_across_documents() {
        let mut s = svc(EngineSel::Uf);
        let text = "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n";
        s.open("a", text).unwrap();
        let r = s.open("b", text).unwrap();
        assert_eq!((r.rechecked, r.reused), (0, 2), "b rides a's cache");
        // …and closing a document keeps the cache warm.
        s.close("a");
        s.close("b");
        let r = s.open("c", text).unwrap();
        assert_eq!((r.rechecked, r.reused), (0, 2));
    }

    #[test]
    fn reopening_with_open_replaces_the_text() {
        let mut s = svc(EngineSel::Uf);
        s.open("d", "let x = 1;;").unwrap();
        let rechecked = s.open("d", "let x = true;;").unwrap().rechecked;
        assert_eq!(rechecked, 1);
        assert_eq!(
            s.type_of("d", "x").unwrap().unwrap().outcome.display(),
            "Bool"
        );
    }
}
