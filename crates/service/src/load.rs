//! Load generation: deterministic random programs for throughput
//! benchmarks, the incremental-vs-scratch property tests, and a
//! corpus-replay driver for the CLI and CI.
//!
//! Programs are generated well-typed by construction: each binding is
//! drawn from a small set of shapes over the Figure 2 prelude, and
//! references only target earlier bindings of a compatible type class
//! (`Int`, `List Int`, `Int * Bool`, or the identity scheme
//! `∀a. a → a`). Edits ([`GenProgram::with_edit`]) replace one binding's
//! right-hand side with a fresh same-class body, so the program stays
//! well typed while the binding's content hash — and therefore exactly
//! its dependency cone — changes.

use crate::exec::CheckReport;
use crate::protocol::Json;
use crate::service::Service;

/// SplitMix64 — tiny, deterministic, dependency-free.
#[derive(Clone, Copy, Debug)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The type class a generated binding lands in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    /// `Int`
    Int,
    /// `∀a. a → a`
    IdScheme,
    /// `Int * Bool`
    Pair,
    /// `List Int`
    ListInt,
}

/// A generated program: binding bodies plus their type classes, so
/// same-class edits can be produced deterministically.
#[derive(Clone, Debug)]
pub struct GenProgram {
    rhs: Vec<String>,
    classes: Vec<Class>,
}

impl GenProgram {
    /// Generate `n` bindings from `seed`.
    pub fn generate(n: usize, seed: u64) -> GenProgram {
        let mut rng = Rng::new(seed);
        let mut rhs: Vec<String> = Vec::with_capacity(n);
        let mut classes: Vec<Class> = Vec::with_capacity(n);
        let pick = |rng: &mut Rng, classes: &[Class], want: Class| -> Option<String> {
            let candidates: Vec<usize> = classes
                .iter()
                .enumerate()
                .filter(|(_, c)| **c == want)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                None
            } else {
                Some(format!("b{}", candidates[rng.below(candidates.len())]))
            }
        };
        for i in 0..n {
            let (body, class) = loop {
                match rng.below(10) {
                    0 | 1 => break (format!("{}", rng.below(1000)), Class::Int),
                    2 => break ("$(fun x -> x)".to_string(), Class::IdScheme),
                    3 => {
                        if let Some(j) = pick(&mut rng, &classes, Class::Int) {
                            break (format!("plus {j} {}", rng.below(100)), Class::Int);
                        }
                    }
                    4 => {
                        if let Some(j) = pick(&mut rng, &classes, Class::IdScheme) {
                            break (format!("auto ~{j}"), Class::IdScheme);
                        }
                    }
                    5 => {
                        if let Some(j) = pick(&mut rng, &classes, Class::IdScheme) {
                            break (format!("poly ~{j}"), Class::Pair);
                        }
                    }
                    6 => {
                        if let Some(j) = pick(&mut rng, &classes, Class::Pair) {
                            break (format!("plus (fst {j}) 1"), Class::Int);
                        }
                    }
                    7 => {
                        if let Some(j) = pick(&mut rng, &classes, Class::Int) {
                            break (format!("single {j}"), Class::ListInt);
                        }
                    }
                    8 => {
                        if let (Some(j), Some(l)) = (
                            pick(&mut rng, &classes, Class::Int),
                            pick(&mut rng, &classes, Class::ListInt),
                        ) {
                            break (format!("{j} :: {l}"), Class::ListInt);
                        }
                    }
                    _ => {
                        if let Some(l) = pick(&mut rng, &classes, Class::ListInt) {
                            break (format!("head {l}"), Class::Int);
                        }
                    }
                }
            };
            let _ = i;
            rhs.push(body);
            classes.push(class);
        }
        GenProgram { rhs, classes }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// The binding name at index `i` (`b0`, `b1`, …).
    pub fn name(&self, i: usize) -> String {
        format!("b{i}")
    }

    /// Render the program text.
    pub fn text(&self) -> String {
        self.render(None)
    }

    /// Render the program with binding `i`'s body replaced — a
    /// single-pass, allocation-light version of
    /// `self.with_edit(i, salt).text()` for hot edit loops.
    pub fn edited_text(&self, i: usize, salt: u64) -> String {
        self.render(Some((i, Self::edit_body(self.classes[i], salt))))
    }

    fn render(&self, edit: Option<(usize, String)>) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 * (self.rhs.len() + 1));
        out.push_str("#use prelude\n");
        for (i, body) in self.rhs.iter().enumerate() {
            let body = match &edit {
                Some((j, replacement)) if *j == i => replacement.as_str(),
                _ => body.as_str(),
            };
            let _ = writeln!(out, "let b{i} = {body};;");
        }
        out
    }

    /// A copy with binding `i`'s body replaced by a fresh body of the
    /// same type class. Distinct salts give distinct bodies (no
    /// wrap-around), so repeated edits never accidentally hit the
    /// scheme cache. The program stays well typed; binding `i`'s
    /// content hash changes.
    pub fn with_edit(&self, i: usize, salt: u64) -> GenProgram {
        let mut out = self.clone();
        out.rhs[i] = Self::edit_body(self.classes[i], salt);
        out
    }

    fn edit_body(class: Class, salt: u64) -> String {
        // Literals live above 10⁹ — the generator's own literals stay
        // below 1000, so an edit can never reproduce an original body.
        let n = 1_000_000_000 + salt % 1_000_000_000;
        match class {
            Class::Int => format!("{n}"),
            Class::IdScheme => format!("$(fun e{salt} -> e{salt})"),
            Class::Pair => format!("({n}, false)"),
            Class::ListInt => format!("single {n}"),
        }
    }
}

/// A closed-loop socket load mix: concurrent clients, each driving a
/// session of `open` / `edit` / `check` / `type-of` / `elaborate`
/// requests (some batched) with a think-time pause between round trips.
///
/// The load is *closed-loop* deliberately: each client waits for its
/// response (and then thinks) before sending again, like an editor
/// would. Session threads that are idle during one client's think time
/// serve another client's request, so `sessions > 1` overlaps latency
/// even on a single CPU — the scaling the `service/workers/<k>` bench
/// records.
#[derive(Clone, Copy, Debug)]
pub struct LoadMix {
    /// Concurrent client connections.
    pub clients: usize,
    /// Bindings per client program.
    pub bindings: usize,
    /// Edit rounds per client (each round: one `edit`, one `type-of`,
    /// and one batched `check`+`type-of`+`elaborate` line).
    pub edits_per_client: usize,
    /// Pause between a response and the next request.
    pub think: std::time::Duration,
    /// Base for edit salts. Distinct bases give distinct edited bodies,
    /// so repeated runs against one hub keep missing the outcome cache
    /// on the edited cone (the steady-state serving cost), while
    /// everything else hits it.
    pub salt_base: u64,
}

impl Default for LoadMix {
    fn default() -> Self {
        LoadMix {
            clients: 6,
            bindings: 16,
            edits_per_client: 4,
            think: std::time::Duration::from_micros(200),
            salt_base: 0,
        }
    }
}

/// The delay before retry number `attempt` (1-based) of an overloaded
/// or refused connection: exponential in the attempt with a uniform
/// jitter in the upper half, seeded deterministically by `salt` so
/// load runs stay reproducible. `hint_ms` is the server's
/// `retry-after-ms` when it sent one — it replaces the default base so
/// a fleet of shed clients spreads over the window the server asked
/// for instead of stampeding back in lockstep.
pub fn backoff_ms(attempt: u32, hint_ms: Option<u64>, salt: u64) -> u64 {
    let base = hint_ms.unwrap_or(10).clamp(1, 10_000);
    let exp = base.saturating_mul(1 << attempt.min(6)).min(10_000);
    let jitter = Rng::new(salt ^ u64::from(attempt)).next() % exp.max(1);
    exp / 2 + jitter / 2
}

/// Is this response a connection-level shed (`overloaded` with a retry
/// hint, or `draining`) rather than an answer to the request?
fn is_shed(v: &Json) -> bool {
    matches!(
        v.get("error").and_then(Json::as_str),
        Some("overloaded" | "draining")
    )
}

/// Retry budget for shed or refused connections before a load client
/// gives up loudly.
const MAX_RETRIES: u32 = 64;

/// Drive a TCP socket server at `addr` with `mix`. Returns the total
/// number of request lines sent (batches count as one line; shed
/// attempts that were retried do not count). Connections refused or
/// shed by admission control (`overloaded` / `draining`) are retried
/// with jittered exponential backoff, honoring the server's
/// `retry-after-ms` hint. Panics on any protocol-level surprise — a
/// response that is not a JSON line, a failed open/edit, or a type-of
/// miss — so benches and CI smoke runs fail loudly rather than
/// measuring garbage.
pub fn drive_tcp(addr: &str, mix: &LoadMix) -> usize {
    use crate::protocol::Request;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::TcpStream;

    /// `Some(response)`, or `None` if the server closed before
    /// answering (a drained listener can do that) — retryable.
    fn round_trip(
        writer: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        line: &str,
    ) -> Option<Json> {
        // One write per request (see `server::serve_with` on Nagle).
        if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
            return None;
        }
        if writer.flush().is_err() {
            return None;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) | Err(_) => None,
            Ok(_) => {
                // lint: allow(unwrap) — load harness: a malformed response is a protocol bug worth a panic
                Some(Json::parse(response.trim_end()).expect("every response is one JSON line"))
            }
        }
    }

    let assert_ok = |v: &Json, what: &str| {
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{what}: {v}");
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..mix.clients)
            .map(|k| {
                let mix = *mix;
                scope.spawn(move || {
                    let g = GenProgram::generate(mix.bindings, 100 + (k % 4) as u64);
                    let doc = "d".to_string();
                    let open = Request::Open {
                        doc: doc.clone(),
                        text: g.text(),
                    };
                    let open_line = open.to_json().to_string();
                    let mut sent = 0usize;
                    // Connect and open, retrying shed and refused
                    // attempts with backoff. A shed can only happen
                    // before the first answer (admission control works
                    // on whole connections), so once the open is
                    // answered the session is admitted for good.
                    let mut attempt = 0u32;
                    let (mut writer, mut reader) = loop {
                        assert!(
                            attempt < MAX_RETRIES,
                            "client {k}: still shed after {attempt} retries"
                        );
                        let mut retry = |hint: Option<u64>| {
                            attempt += 1;
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms(
                                attempt,
                                hint,
                                0xB0FF ^ k as u64,
                            )));
                        };
                        let Ok(stream) = TcpStream::connect(addr) else {
                            retry(None);
                            continue;
                        };
                        let _ = stream.set_nodelay(true);
                        let mut w = stream;
                        // lint: allow(unwrap) — load harness: local stream clone failure aborts the run
                        let mut r = BufReader::new(w.try_clone().expect("clone stream"));
                        std::thread::sleep(mix.think);
                        match round_trip(&mut w, &mut r, &open_line) {
                            None => retry(None),
                            Some(v) if is_shed(&v) => {
                                let hint = v
                                    .get("retry-after-ms")
                                    .and_then(Json::as_num)
                                    .map(|n| n as u64);
                                retry(hint);
                            }
                            Some(v) => {
                                assert_ok(&v, "open");
                                sent += 1;
                                break (w, r);
                            }
                        }
                    };
                    let mut send = |w: &mut TcpStream, r: &mut BufReader<TcpStream>, line: &str| {
                        std::thread::sleep(mix.think);
                        sent += 1;
                        // lint: allow(unwrap) — load harness: mid-session close is a server bug worth a panic
                        round_trip(w, r, line).expect("server closed mid-session")
                    };
                    for e in 0..mix.edits_per_client {
                        let i = (k + 3 * e) % g.len();
                        let salt = mix.salt_base + (k * 1000 + e) as u64;
                        let edit = Request::Edit {
                            doc: doc.clone(),
                            text: g.edited_text(i, salt),
                        };
                        assert_ok(
                            &send(&mut writer, &mut reader, &edit.to_json().to_string()),
                            "edit",
                        );
                        let probe = Request::TypeOf {
                            doc: doc.clone(),
                            name: g.name(i),
                        };
                        let r = send(&mut writer, &mut reader, &probe.to_json().to_string());
                        assert_eq!(r.get("found"), Some(&Json::Bool(true)), "type-of: {r}");
                        // One batched line: recheck, probe another
                        // binding, elaborate a third.
                        let batch = Json::Arr(vec![
                            Request::Check { doc: doc.clone() }.to_json(),
                            Request::TypeOf {
                                doc: doc.clone(),
                                name: g.name((i + 1) % g.len()),
                            }
                            .to_json(),
                            Request::Elaborate {
                                doc: doc.clone(),
                                name: g.name((i + 2) % g.len()),
                            }
                            .to_json(),
                        ]);
                        let r = send(&mut writer, &mut reader, &batch.to_string());
                        match &r {
                            Json::Arr(items) => {
                                assert_eq!(items.len(), 3, "batch answers in full: {r}");
                                for item in items {
                                    assert_ok(item, "batched request");
                                }
                            }
                            other => panic!("batch line answered {other}"),
                        }
                    }
                    let close = Request::Close { doc };
                    let r = send(&mut writer, &mut reader, &close.to_json().to_string());
                    assert_eq!(r.get("closed"), Some(&Json::Bool(true)), "close: {r}");
                    sent
                })
            })
            .collect();
        // lint: allow(unwrap) — load harness: worker panics propagate the assertion
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Aggregate statistics from a corpus replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayStats {
    /// Programs replayed.
    pub programs: usize,
    /// Total bindings across all programs.
    pub bindings: usize,
    /// Bindings inferred during the cold opens.
    pub cold_rechecked: usize,
    /// Warm edits performed (two per binding: touch and restore).
    pub edits: usize,
    /// Bindings inferred across all warm edits.
    pub warm_rechecked: usize,
    /// Hard failures (disagreements, unexpected parse errors), rendered.
    pub failures: Vec<String>,
}

impl ReplayStats {
    /// A one-paragraph human rendering.
    pub fn render(&self) -> String {
        format!(
            "replayed {} program(s), {} binding(s): cold rechecked {}, \
             {} warm edit(s) rechecked {} ({:.2} bindings/edit); {} failure(s)",
            self.programs,
            self.bindings,
            self.cold_rechecked,
            self.edits,
            self.warm_rechecked,
            if self.edits == 0 {
                0.0
            } else {
                self.warm_rechecked as f64 / self.edits as f64
            },
            self.failures.len(),
        )
    }
}

fn scan_report(stats: &mut ReplayStats, id: &str, report: &CheckReport) {
    for b in &report.bindings {
        if let crate::db::Outcome::Disagreement { core, uf } = &b.outcome {
            stats.failures.push(format!(
                "{id}: `{}` disagreement (core: {core}, uf: {uf})",
                b.name
            ));
        }
    }
}

/// Replay a corpus of `(id, program-text)` documents through a service:
/// cold-open each, then touch every binding in place (append a `--`
/// comment line inside its declaration, before the `;;`) and recheck
/// warm, then restore. Collects the recheck counters that the
/// throughput claims are made of and flags engine disagreements.
pub fn replay(svc: &mut Service, programs: &[(String, String)]) -> ReplayStats {
    let mut stats = ReplayStats::default();
    for (id, text) in programs {
        let report = match svc.open(id, text) {
            Ok(r) => r.clone(),
            Err(e) => {
                stats.failures.push(format!("{id}: {e}"));
                continue;
            }
        };
        stats.programs += 1;
        stats.bindings += report.bindings.len();
        stats.cold_rechecked += report.rechecked;
        scan_report(&mut stats, id, &report);

        // Touch each binding: a `--` comment inside the declaration
        // slice changes its content hash without changing its meaning
        // (and exercises the chunk scanner's comment handling — the
        // comment itself contains a `;;`).
        let Ok(program) = freezeml_core::parse_program(text) else {
            continue; // unreachable: the open above parsed
        };
        for d in &program.decls {
            let end = d.span.end - 2; // before the `;;`
            let touched = format!("{} -- touch ;;\n{}", &text[..end], &text[end..]);
            match svc.edit(id, &touched) {
                Ok(r) => {
                    stats.edits += 1;
                    stats.warm_rechecked += r.rechecked;
                    let r = r.clone();
                    scan_report(&mut stats, id, &r);
                }
                Err(e) => stats.failures.push(format!("{id} (touch {}): {e}", d.name)),
            }
            match svc.edit(id, text) {
                Ok(r) => {
                    stats.edits += 1;
                    stats.warm_rechecked += r.rechecked;
                }
                Err(e) => stats
                    .failures
                    .push(format!("{id} (restore {}): {e}", d.name)),
            }
        }
        svc.close(id);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::service::ServiceConfig;
    use freezeml_core::Options;

    fn svc(engine: EngineSel) -> Service {
        Service::new(ServiceConfig {
            opts: Options::default(),
            engine,
            workers: 2,
        })
    }

    #[test]
    fn the_load_mix_drives_a_socket_server_to_completion() {
        use crate::server::ServeOptions;
        use crate::shared::Shared;
        use crate::sock::SocketServer;
        use crate::sync::Arc;

        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            ServiceConfig {
                opts: Options::default(),
                engine: EngineSel::Uf,
                workers: 1,
            },
            Arc::new(Shared::new()),
            2,
            ServeOptions::default(),
        )
        .unwrap();
        let mix = LoadMix {
            clients: 3,
            bindings: 8,
            edits_per_client: 2,
            think: std::time::Duration::from_micros(50),
            salt_base: 1,
        };
        let sent = drive_tcp(server.local_addr(), &mix);
        // Per client: open + 2 × (edit, type-of, batch) + close = 8.
        assert_eq!(sent, 3 * 8);
        // A second run against the same hub (fresh salts) still works.
        let sent = drive_tcp(
            server.local_addr(),
            &LoadMix {
                salt_base: 100_000,
                ..mix
            },
        );
        assert_eq!(sent, 3 * 8);
        server.shutdown();
    }

    #[test]
    fn generated_programs_are_well_typed_and_deterministic() {
        for seed in [1u64, 2, 3] {
            let g = GenProgram::generate(40, seed);
            assert_eq!(g.text(), GenProgram::generate(40, seed).text());
            let mut s = svc(EngineSel::Both);
            let r = s.open("g", &g.text()).unwrap();
            assert!(
                r.all_typed(),
                "seed {seed}: {:?}",
                r.bindings
                    .iter()
                    .filter(|b| !b.outcome.is_typed())
                    .map(|b| (&b.name, b.outcome.display()))
                    .collect::<Vec<_>>()
            );
            assert_eq!(r.rechecked, 40);
        }
    }

    #[test]
    fn edits_keep_programs_well_typed() {
        let g = GenProgram::generate(30, 7);
        let mut s = svc(EngineSel::Both);
        s.open("g", &g.text()).unwrap();
        for i in [0usize, 7, 15, 29] {
            let edited = g.with_edit(i, i as u64 + 1);
            let r = s.edit("g", &edited.text()).unwrap();
            assert!(r.all_typed(), "edit {i}: {:?}", r.bindings);
            // Restore for the next round.
            s.edit("g", &g.text()).unwrap();
        }
    }

    #[test]
    fn replay_collects_counters_and_flags_nothing_on_good_programs() {
        let g = GenProgram::generate(12, 11);
        let mut s = svc(EngineSel::Both);
        let stats = replay(
            &mut s,
            &[
                ("gen".to_string(), g.text()),
                ("tiny".to_string(), "let x = 1;;".to_string()),
            ],
        );
        assert_eq!(stats.programs, 2);
        assert_eq!(stats.bindings, 13);
        assert_eq!(stats.cold_rechecked, 13);
        assert_eq!(stats.edits, 26);
        assert!(stats.failures.is_empty(), "{:?}", stats.failures);
        // Warm edits must be dramatically cheaper than cold checks.
        assert!(
            stats.warm_rechecked < stats.bindings * stats.edits,
            "incrementality failed: {}",
            stats.render()
        );
        assert!(stats.render().contains("replayed 2 program(s)"));
    }
}
