//! Persistent warm starts: a crash-safe on-disk snapshot of the hub's
//! warm state, so a restarted `serve` or a repeated `freezeml check
//! --cache-dir DIR` begins at warm-edit speed instead of cold.
//!
//! ## What is persisted
//!
//! Four tables, all content-addressed (the in-memory keys already
//! fingerprint text, dependencies, and configuration — [`crate::db`]):
//!
//! 1. the **scheme DAG** — the α-canonical nodes reachable from every
//!    persisted verdict, flattened topologically
//!    ([`freezeml_engine::snapshot`]); SchemeIds are process-local, so
//!    loads remap them by structural re-interning;
//! 2. the **render table** — the memoised `pretty` string per persisted
//!    root, so a warm restart serves schemes with zero materialisations;
//! 3. the **Merkle verdict cache** — cache key → outcome (+ root index
//!    for typed outcomes);
//! 4. the **document-report cache** and the **declaration parse slices**
//!    — a re-opened unchanged document is served wholesale, and a
//!    near-miss edit re-parses only the touched chunk.
//!
//! ## Format
//!
//! Hand-rolled, little-endian, length-prefixed (the same no-new-deps
//! discipline as the JSON protocol):
//!
//! ```text
//! "FZSC" | version u32 | epoch u64 | generation u64
//!        | payload_len u64 | checksum u64 | payload …
//! ```
//!
//! The **epoch** fingerprints format version, crate version, and
//! checker options; a mismatch means the bytes may be meaningless and
//! the load silently starts cold. The **checksum** (the content hash of
//! [`crate::hash`]) covers the payload, so truncation or bit rot is
//! detected before anything is applied — a snapshot decodes *fully*
//! into plain data first, and only a fully valid one touches the hub.
//! Invented (`%n`/`!n`) variables never travel: entries rooted in them
//! are skipped at save time and ill-scoped roots are refused by
//! [`freezeml_engine::bank::SchemeBank::absorb_snapshot`] at load time.
//!
//! ## Crash safety
//!
//! Writes go to a temp file in the same directory, `fsync`, then
//! atomically rename over `freezeml.cache` (and fsync the directory).
//! A crash at any point leaves either the old snapshot or the new one,
//! never a torn file. The header carries a **generation** counter; the
//! hub stamps every cache touch with its current generation
//! ([`crate::shared`]), saves sort entries newest-generation-first, and
//! when a snapshot would exceed `--max-cache-bytes` the oldest
//! (untouched-longest) entries are evicted from the file *and* the hub.

use crate::db::Outcome;
use crate::exec::{BindingReport, CheckReport};
use crate::fault;
use crate::hash::Hasher64;
use crate::shared::Shared;
use crate::sync::{Arc, PoisonError};
use freezeml_core::{Options, Span};
use freezeml_engine::{PortableCon, PortableNode, SchemeId};
use freezeml_obs::lockrank;
use freezeml_obs::{Record, TraceCtx, Val};
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Snapshot file magic.
const MAGIC: &[u8; 4] = b"FZSC";

/// Bumped on any incompatible layout change (also mixed into the
/// epoch, so old files are rejected by epoch before layout is trusted).
const FORMAT_VERSION: u32 = 1;

/// Header size in bytes: magic + version + epoch + generation +
/// payload_len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// The snapshot file name within the cache directory.
pub const CACHE_FILE: &str = "freezeml.cache";

/// Where and how large. `Clone` so the CLI can hand one to a
/// checkpointer thread and keep another for the final save.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// The cache directory (created on first save).
    pub dir: PathBuf,
    /// Snapshot size cap; oldest-generation entries are evicted to fit.
    pub max_bytes: u64,
}

/// Default snapshot size cap (64 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

impl PersistConfig {
    /// A config with the default 64 MiB cap.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }

    /// The snapshot file path.
    pub fn file(&self) -> PathBuf {
        self.dir.join(CACHE_FILE)
    }
}

/// The cache-key epoch: a fingerprint of everything that must match for
/// persisted bytes to be meaningful. Engine selection is deliberately
/// *not* in the epoch — it is in every cache key, so one snapshot file
/// serves mixed-engine sessions the same way one hub does.
pub fn epoch(opts: &Options) -> u64 {
    let mut h = Hasher64::new();
    h.write_u64(u64::from(FORMAT_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u64(u64::from(opts.value_restriction));
    h.write_u64(match opts.instantiation {
        freezeml_core::InstantiationStrategy::Variable => 0,
        freezeml_core::InstantiationStrategy::Eliminator => 1,
    });
    h.finish()
}

/// What a save wrote (observability; surfaced by `check --cache-dir`).
#[derive(Clone, Debug)]
pub struct SaveOutcome {
    /// Snapshot file size.
    pub bytes: u64,
    /// Verdict-cache entries written.
    pub entries: usize,
    /// Document reports written.
    pub docs: usize,
    /// Parse-cache slices written.
    pub chunks: usize,
    /// Entries evicted (file + memory) to meet the size cap.
    pub evicted: u64,
    /// Entries skipped because their scheme reaches an invented
    /// variable (unportable, served in-process only).
    pub unportable: usize,
    /// The generation stamped into the header.
    pub generation: u64,
}

/// What a load found. Never an error: every failure mode is a cold
/// start, with `warning` saying why when the file existed but was
/// unusable.
#[derive(Clone, Debug, Default)]
pub struct LoadOutcome {
    /// Did a snapshot apply?
    pub loaded: bool,
    /// Verdict-cache entries restored.
    pub entries: usize,
    /// Document reports restored.
    pub docs: usize,
    /// Parse-cache slices restored.
    pub chunks: usize,
    /// Scheme nodes absorbed.
    pub nodes: usize,
    /// The generation the hub resumed at.
    pub generation: u64,
    /// Why the load fell back cold, when it did and a file was present.
    pub warning: Option<String>,
}

// ------------------------------------------------------------ encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecResult<u32> {
        // lint: allow(unwrap) — take(4) yields exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> DecResult<u64> {
        // lint: allow(unwrap) — take(8) yields exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> DecResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    /// A section count, sanity-capped by the bytes actually present so
    /// corrupt counts can't drive huge allocations.
    fn count(&mut self, min_elem_bytes: usize) -> DecResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(format!("count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }
}

// ------------------------------------------------- portable structures

/// An outcome as persisted: typed outcomes carry a root index into the
/// snapshot's node table (the scheme string is reinstated from the
/// render table on load), everything else travels as strings.
#[derive(Clone, Debug)]
enum POutcome {
    Typed { root: u32, defaulted: Vec<String> },
    Error { class: String, message: String },
    Blocked { on: String },
}

#[derive(Debug)]
struct PBinding {
    name: String,
    span: (u64, u64),
    outcome: POutcome,
}

#[derive(Debug, Default)]
struct DecodedSnapshot {
    nodes: Vec<PortableNode>,
    renders: Vec<(u32, String)>,
    entries: Vec<(u64, u64, POutcome)>,
    /// `(doc key, verify digest, generation, bindings)`.
    docs: Vec<(u64, u64, u64, Vec<PBinding>)>,
    chunks: Vec<String>,
}

fn enc_node(e: &mut Enc, n: &PortableNode) {
    match n {
        PortableNode::Bound(k) => {
            e.u8(0);
            e.u32(*k);
        }
        PortableNode::Free(name) => {
            e.u8(1);
            e.str(name);
        }
        PortableNode::Con(c, children) => {
            e.u8(2);
            match c {
                PortableCon::Int => e.u8(0),
                PortableCon::Bool => e.u8(1),
                PortableCon::List => e.u8(2),
                PortableCon::Arrow => e.u8(3),
                PortableCon::Prod => e.u8(4),
                PortableCon::St => e.u8(5),
                PortableCon::Other { name, arity } => {
                    e.u8(6);
                    e.str(name);
                    e.u32(*arity);
                }
            }
            e.u32(children.len() as u32);
            for c in children {
                e.u32(*c);
            }
        }
        PortableNode::Forall { body, hint } => {
            e.u8(3);
            e.u32(*body);
            match hint {
                None => e.u8(0),
                Some(h) => {
                    e.u8(1);
                    e.str(h);
                }
            }
        }
    }
}

fn dec_node(d: &mut Dec) -> DecResult<PortableNode> {
    Ok(match d.u8()? {
        0 => PortableNode::Bound(d.u32()?),
        1 => PortableNode::Free(d.str()?),
        2 => {
            let con = match d.u8()? {
                0 => PortableCon::Int,
                1 => PortableCon::Bool,
                2 => PortableCon::List,
                3 => PortableCon::Arrow,
                4 => PortableCon::Prod,
                5 => PortableCon::St,
                6 => {
                    let name = d.str()?;
                    let arity = d.u32()?;
                    PortableCon::Other { name, arity }
                }
                t => return Err(format!("unknown constructor tag {t}")),
            };
            let n = d.count(4)?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(d.u32()?);
            }
            PortableNode::Con(con, children)
        }
        3 => {
            let body = d.u32()?;
            let hint = match d.u8()? {
                0 => None,
                1 => Some(d.str()?),
                t => return Err(format!("unknown hint tag {t}")),
            };
            PortableNode::Forall { body, hint }
        }
        t => return Err(format!("unknown node tag {t}")),
    })
}

fn enc_outcome(e: &mut Enc, o: &POutcome) {
    match o {
        POutcome::Typed { root, defaulted } => {
            e.u8(0);
            e.u32(*root);
            e.u32(defaulted.len() as u32);
            for d in defaulted {
                e.str(d);
            }
        }
        POutcome::Error { class, message } => {
            e.u8(1);
            e.str(class);
            e.str(message);
        }
        POutcome::Blocked { on } => {
            e.u8(2);
            e.str(on);
        }
    }
}

fn dec_outcome(d: &mut Dec) -> DecResult<POutcome> {
    Ok(match d.u8()? {
        0 => {
            let root = d.u32()?;
            let n = d.count(4)?;
            let mut defaulted = Vec::with_capacity(n);
            for _ in 0..n {
                defaulted.push(d.str()?);
            }
            POutcome::Typed { root, defaulted }
        }
        1 => POutcome::Error {
            class: d.str()?,
            message: d.str()?,
        },
        2 => POutcome::Blocked { on: d.str()? },
        t => return Err(format!("unknown outcome tag {t}")),
    })
}

fn encode_payload(s: &DecodedSnapshot) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(s.nodes.len() as u32);
    for n in &s.nodes {
        enc_node(&mut e, n);
    }
    e.u32(s.renders.len() as u32);
    for (idx, r) in &s.renders {
        e.u32(*idx);
        e.str(r);
    }
    e.u32(s.entries.len() as u32);
    for (key, gen, o) in &s.entries {
        e.u64(*key);
        e.u64(*gen);
        enc_outcome(&mut e, o);
    }
    e.u32(s.docs.len() as u32);
    for (key, verify, gen, bindings) in &s.docs {
        e.u64(*key);
        e.u64(*verify);
        e.u64(*gen);
        e.u32(bindings.len() as u32);
        for b in bindings {
            e.str(&b.name);
            e.u64(b.span.0);
            e.u64(b.span.1);
            enc_outcome(&mut e, &b.outcome);
        }
    }
    e.u32(s.chunks.len() as u32);
    for c in &s.chunks {
        e.str(c);
    }
    e.buf
}

fn decode_payload(data: &[u8]) -> DecResult<DecodedSnapshot> {
    let mut d = Dec::new(data);
    let mut s = DecodedSnapshot::default();
    let n = d.count(1)?;
    for _ in 0..n {
        s.nodes.push(dec_node(&mut d)?);
    }
    let n = d.count(8)?;
    for _ in 0..n {
        let idx = d.u32()?;
        let r = d.str()?;
        s.renders.push((idx, r));
    }
    let n = d.count(17)?;
    for _ in 0..n {
        let key = d.u64()?;
        let gen = d.u64()?;
        s.entries.push((key, gen, dec_outcome(&mut d)?));
    }
    let n = d.count(28)?;
    for _ in 0..n {
        let key = d.u64()?;
        let verify = d.u64()?;
        let gen = d.u64()?;
        let m = d.count(21)?;
        let mut bindings = Vec::with_capacity(m);
        for _ in 0..m {
            let name = d.str()?;
            let start = d.u64()?;
            let end = d.u64()?;
            bindings.push(PBinding {
                name,
                span: (start, end),
                outcome: dec_outcome(&mut d)?,
            });
        }
        s.docs.push((key, verify, gen, bindings));
    }
    let n = d.count(4)?;
    for _ in 0..n {
        s.chunks.push(d.str()?);
    }
    if d.remaining() != 0 {
        return Err(format!("{} trailing bytes", d.remaining()));
    }
    Ok(s)
}

// ----------------------------------------------------------------- save

/// One eviction candidate: an entry or a doc report, with the key to
/// drop it from memory by and a cheap size estimate.
enum Item {
    Entry(u64, u64, Outcome),
    /// `(doc key, verify digest, generation, report)`.
    Doc(u64, u64, u64, Arc<CheckReport>),
}

impl Item {
    fn gen(&self) -> u64 {
        match self {
            Item::Entry(_, g, _) | Item::Doc(_, _, g, _) => *g,
        }
    }

    fn est_bytes(&self) -> u64 {
        fn outcome_est(o: &Outcome) -> u64 {
            match o {
                // Scheme string length ×3 approximates the node +
                // render share of a typed outcome.
                Outcome::Typed {
                    scheme, defaulted, ..
                } => {
                    48 + 3 * scheme.len() as u64
                        + defaulted.iter().map(|d| d.len() as u64 + 8).sum::<u64>()
                }
                Outcome::Error { class, message } => 24 + (class.len() + message.len()) as u64,
                Outcome::Blocked { on } => 16 + on.len() as u64,
                Outcome::Disagreement { .. } => 0, // never persisted
            }
        }
        match self {
            Item::Entry(_, _, o) => 17 + outcome_est(o),
            Item::Doc(_, _, _, r) => {
                28 + r
                    .bindings
                    .iter()
                    .map(|b| 21 + b.name.len() as u64 + outcome_est(&b.outcome))
                    .sum::<u64>()
            }
        }
    }
}

fn portable_outcome(o: &Outcome, idx_of: &dyn Fn(SchemeId) -> Option<u32>) -> Option<POutcome> {
    match o {
        Outcome::Typed { id, defaulted, .. } => idx_of(*id).map(|root| POutcome::Typed {
            root,
            defaulted: defaulted.clone(),
        }),
        Outcome::Error { class, message } => Some(POutcome::Error {
            class: class.clone(),
            message: message.clone(),
        }),
        Outcome::Blocked { on } => Some(POutcome::Blocked { on: on.clone() }),
        Outcome::Disagreement { .. } => None,
    }
}

/// Snapshot the hub to `cfg.dir`, evicting oldest-generation entries
/// (from the file and the hub) as needed to respect `cfg.max_bytes`,
/// then advance the hub generation.
///
/// # Errors
///
/// I/O failures creating or writing the cache directory. The previous
/// snapshot, if any, survives any failure.
pub fn save(shared: &Shared, epoch: u64, cfg: &PersistConfig) -> io::Result<SaveOutcome> {
    let t0 = Instant::now();
    let generation = shared.cache().generation();

    // Collect candidates, newest generation first.
    let mut items: Vec<Item> = Vec::new();
    for (k, g, o) in shared.cache().export() {
        items.push(Item::Entry(k, g, o));
    }
    for (k, v, g, r) in shared.export_doc_reports() {
        items.push(Item::Doc(k, v, g, r));
    }
    items.sort_by_key(|i| std::cmp::Reverse(i.gen()));

    // Budget pre-pass on cheap size estimates.
    let budget = cfg.max_bytes.saturating_sub(HEADER_LEN as u64 + 64);
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    let mut used = 0u64;
    for it in items {
        let sz = it.est_bytes();
        if used + sz <= budget {
            used += sz;
            kept.push(it);
        } else {
            dropped.push(it);
        }
    }

    let chunks: Vec<String> = {
        let mut out = Vec::new();
        let mut chunk_used = 0u64;
        for s in shared.frontend().export_slices() {
            let sz = s.len() as u64 + 4;
            if used + chunk_used + sz > budget {
                continue; // chunks are regenerable; drop freely
            }
            chunk_used += sz;
            out.push(s);
        }
        out
    };

    // Failpoint: a snapshot that cannot even be encoded (`delay` models
    // a slow encode under memory pressure).
    if let Some(f) = fault::hit_counted("persist.encode", shared.metrics()) {
        if let Err(e) = f.io_effect() {
            shared.metrics().checkpoint_failures.inc();
            return Err(e);
        }
    }

    // Encode, shrinking the kept set if the real size still overflows
    // (node tables shared across entries make estimates optimistic).
    let mut unportable;
    let payload = loop {
        let (snapshot, skipped) = build_snapshot(shared, &kept, &chunks);
        unportable = skipped;
        let payload = encode_payload(&snapshot);
        if payload.len() + HEADER_LEN <= cfg.max_bytes as usize || kept.is_empty() {
            break payload;
        }
        // Drop the oldest quarter (at least one) and retry.
        let cut = (kept.len() - kept.len() / 4).min(kept.len() - 1);
        dropped.extend(kept.drain(cut..));
    };

    // Count what survived into the file.
    let (entries, docs) = kept.iter().fold((0usize, 0usize), |(e, d), it| match it {
        Item::Entry(..) => (e + 1, d),
        Item::Doc(..) => (e, d + 1),
    });

    // Write: temp + fsync + atomic rename + directory fsync.
    std::fs::create_dir_all(&cfg.dir)?;
    let tmp = cfg
        .dir
        .join(format!(".{CACHE_FILE}.tmp.{}", std::process::id()));
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&epoch.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = Hasher64::new().write(&payload).finish();
    header.extend_from_slice(&checksum.to_le_bytes());
    let res = (|| -> io::Result<u64> {
        let mut f = std::fs::File::create(&tmp)?;
        if let Some(fp) = fault::hit_counted("persist.write", shared.metrics()) {
            fp.io_effect()?;
        }
        f.write_all(&header)?;
        f.write_all(&payload)?;
        f.sync_all()?;
        if let Some(fp) = fault::hit_counted("persist.rename", shared.metrics()) {
            fp.io_effect()?;
        }
        std::fs::rename(&tmp, cfg.file())?;
        if let Ok(d) = std::fs::File::open(&cfg.dir) {
            let _ = d.sync_all(); // best effort; not all platforms allow it
        }
        Ok((header.len() + payload.len()) as u64)
    })();
    let bytes = match res {
        Ok(b) => b,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            shared.metrics().checkpoint_failures.inc();
            return Err(e);
        }
    };

    // The file is durable; now make memory agree with it — evicted
    // entries leave the hub too, and the generation advances so future
    // touches are distinguishable from everything this snapshot saw.
    let evicted = dropped.len() as u64;
    for it in &dropped {
        match it {
            Item::Entry(k, _, _) => shared.cache().remove(*k),
            Item::Doc(k, _, _, _) => shared.remove_doc_report(*k),
        }
    }
    if evicted > 0 {
        shared.note_evictions(evicted);
    }
    shared.cache().advance_generation();

    // Checkpoint-thread wiring: duration, bytes, and per-save evictions
    // land in the registry (and one `snapshot-save` span on the tracer)
    // whether the save came from the checkpointer, `finish`, or an
    // explicit `save_cache`.
    let m = shared.metrics();
    m.checkpoints.inc();
    m.checkpoint_bytes.add(bytes);
    m.checkpoint_duration.record(t0.elapsed());
    let extras = [("bytes", Val::U(bytes)), ("evicted", Val::U(evicted))];
    shared.tracer().emit(
        &Record::new("span", "snapshot-save")
            .dur(t0.elapsed())
            .extras(&extras),
    );

    Ok(SaveOutcome {
        bytes,
        entries,
        docs,
        chunks: chunks.len(),
        evicted,
        unportable,
        generation,
    })
}

/// Build the portable snapshot for the kept items: export the scheme
/// DAG reachable from their typed outcomes, translate outcomes, and
/// collect render strings. Returns the snapshot plus how many items
/// were skipped as unportable.
fn build_snapshot(shared: &Shared, kept: &[Item], chunks: &[String]) -> (DecodedSnapshot, usize) {
    let bank = shared.bank();

    // Unique typed roots across everything kept.
    let mut roots: Vec<SchemeId> = Vec::new();
    let mut seen = std::collections::HashMap::new();
    let mut note = |o: &Outcome| {
        if let Outcome::Typed { id, .. } = o {
            seen.entry(*id).or_insert_with(|| {
                roots.push(*id);
            });
        }
    };
    for it in kept {
        match it {
            Item::Entry(_, _, o) => note(o),
            Item::Doc(_, _, _, r) => r.bindings.iter().for_each(|b| note(&b.outcome)),
        }
    }

    let (nodes, idxs) = bank.export_snapshot(&roots);
    let idx_by_id: std::collections::HashMap<SchemeId, Option<u32>> =
        roots.iter().copied().zip(idxs).collect();
    let idx_of = |id: SchemeId| -> Option<u32> { idx_by_id.get(&id).copied().flatten() };

    // Render table: one string per portable root (memo hits for warm
    // ids; roots only rendered at save time cost one pretty each).
    let mut renders: Vec<(u32, String)> = Vec::new();
    let mut rendered = std::collections::HashSet::new();
    for &r in &roots {
        if let Some(idx) = idx_of(r) {
            if rendered.insert(idx) {
                renders.push((idx, bank.pretty(r).to_string()));
            }
        }
    }

    let mut snapshot = DecodedSnapshot {
        nodes,
        renders,
        entries: Vec::new(),
        docs: Vec::new(),
        chunks: chunks.to_vec(),
    };
    let mut unportable = 0usize;
    for it in kept {
        match it {
            Item::Entry(k, g, o) => match portable_outcome(o, &idx_of) {
                Some(po) => snapshot.entries.push((*k, *g, po)),
                None => unportable += 1,
            },
            Item::Doc(k, v, g, r) => {
                let bindings: Option<Vec<PBinding>> = r
                    .bindings
                    .iter()
                    .map(|b| {
                        portable_outcome(&b.outcome, &idx_of).map(|po| PBinding {
                            name: b.name.clone(),
                            span: (b.span.start as u64, b.span.end as u64),
                            outcome: po,
                        })
                    })
                    .collect();
                match bindings {
                    Some(bs) => snapshot.docs.push((*k, *v, *g, bs)),
                    None => unportable += 1,
                }
            }
        }
    }
    (snapshot, unportable)
}

// ----------------------------------------------------------------- load

/// Load a snapshot into the hub, if a valid one for this epoch exists.
/// Total: every failure mode — no file, wrong magic/version/epoch,
/// truncation, checksum mismatch, malformed payload — is a cold start
/// reported in the outcome, never an error or a partial application.
pub fn load(shared: &Shared, epoch_now: u64, cfg: &PersistConfig) -> LoadOutcome {
    let t0 = Instant::now();
    // Failpoint: a snapshot file that cannot be read back. Exercises
    // the cold-fallback path with the `io` failure label.
    if let Some(f) = fault::hit_counted("persist.load", shared.metrics()) {
        if let Err(e) = f.io_effect() {
            return cold(shared, format!("cannot read snapshot: {e} (failpoint)"));
        }
    }
    let path = cfg.file();
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::default(),
        Err(e) => return cold(shared, format!("cannot read {}: {e}", path.display())),
    };
    let (generation, payload) = match validate(&data, epoch_now) {
        Ok(p) => p,
        Err(w) => return cold(shared, w),
    };
    let snapshot = match decode_payload(payload) {
        Ok(s) => s,
        Err(w) => return cold(shared, format!("malformed payload: {w}")),
    };
    let out = apply(shared, generation, snapshot);
    if out.loaded {
        shared.metrics().cache_loads.inc();
        let extras = [("entries", Val::U(out.entries as u64))];
        shared.tracer().emit(
            &Record::new("span", "snapshot-load")
                .dur(t0.elapsed())
                .extras(&extras),
        );
    }
    out
}

/// Classify a cold-fallback warning into a small stable label set for
/// the `cache_load_failures` counter.
fn failure_reason(warning: &str) -> &'static str {
    if warning.contains("too short") || warning.contains("payload length") {
        "truncated"
    } else if warning.contains("bad magic") {
        "magic"
    } else if warning.contains("format version") {
        "version"
    } else if warning.contains("epoch mismatch") {
        "epoch"
    } else if warning.contains("checksum mismatch") {
        "checksum"
    } else if warning.contains("malformed payload") {
        "malformed"
    } else if warning.contains("cannot read") {
        "io"
    } else {
        "other"
    }
}

/// A cold start with a warning: the structured replacement for what
/// used to be an unstructured stderr line — the reason lands on the
/// `cache_load_failures` labeled counter and a `warn` trace record.
fn cold(shared: &Shared, warning: String) -> LoadOutcome {
    let reason = failure_reason(&warning);
    shared.metrics().cache_load_failures.inc(reason);
    shared.tracer().warn(
        "cold-fallback",
        TraceCtx::default(),
        &[("reason", Val::S(reason)), ("detail", Val::S(&warning))],
    );
    LoadOutcome {
        warning: Some(warning),
        ..LoadOutcome::default()
    }
}

/// Header and checksum validation; returns the generation and payload.
fn validate(data: &[u8], epoch_now: u64) -> Result<(u64, &[u8]), String> {
    if data.len() < HEADER_LEN {
        return Err(format!("file too short ({} bytes)", data.len()));
    }
    if &data[0..4] != MAGIC {
        return Err("bad magic".to_string());
    }
    // lint: allow(unwrap) — 4-byte slice by construction
    let u32_at = |i: usize| u32::from_le_bytes(data[i..i + 4].try_into().expect("4"));
    // lint: allow(unwrap) — 8-byte slice by construction
    let u64_at = |i: usize| u64::from_le_bytes(data[i..i + 8].try_into().expect("8"));
    let version = u32_at(4);
    if version != FORMAT_VERSION {
        return Err(format!("format version {version} != {FORMAT_VERSION}"));
    }
    let epoch = u64_at(8);
    if epoch != epoch_now {
        return Err("epoch mismatch (engine version or options changed)".to_string());
    }
    let generation = u64_at(16);
    let payload_len = u64_at(24) as usize;
    let checksum = u64_at(32);
    let payload = &data[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(format!(
            "payload length {} != header's {payload_len}",
            payload.len()
        ));
    }
    if Hasher64::new().write(payload).finish() != checksum {
        return Err("checksum mismatch".to_string());
    }
    Ok((generation, payload))
}

/// Apply a fully decoded snapshot. The scheme DAG absorbs first (ids
/// remapped by structural re-interning); entries and reports whose
/// roots are rejected are skipped individually.
fn apply(shared: &Shared, generation: u64, snapshot: DecodedSnapshot) -> LoadOutcome {
    let bank = shared.bank();
    // Failpoint: the scheme DAG cannot be re-interned (models a
    // snapshot whose node table the bank rejects).
    if let Some(f) = fault::hit_counted("bank.absorb", shared.metrics()) {
        if let Err(e) = f.io_effect() {
            return cold(shared, format!("malformed payload: {e} (failpoint)"));
        }
    }
    let absorbed = match bank.absorb_snapshot(&snapshot.nodes) {
        Ok(a) => a,
        Err(e) => return cold(shared, e.to_string()),
    };

    // Reinstate renderings before any entry can demand one, so the warm
    // path performs zero cold renders.
    for (idx, s) in &snapshot.renders {
        if let Some(id) = absorbed.closed(*idx) {
            bank.seed_rendering(id, Arc::from(s.as_str()));
        }
    }

    let restore = |po: &POutcome| -> Option<Outcome> {
        Some(match po {
            POutcome::Typed { root, defaulted } => {
                let id = absorbed.closed(*root)?;
                Outcome::Typed {
                    id,
                    scheme: bank.pretty(id),
                    defaulted: defaulted.clone(),
                }
            }
            POutcome::Error { class, message } => Outcome::Error {
                class: class.clone(),
                message: message.clone(),
            },
            POutcome::Blocked { on } => Outcome::Blocked { on: on.clone() },
        })
    };

    let mut out = LoadOutcome {
        loaded: true,
        nodes: absorbed.len(),
        generation: generation.saturating_add(1),
        ..LoadOutcome::default()
    };
    for (key, gen, po) in &snapshot.entries {
        if let Some(o) = restore(po) {
            shared.cache().insert_with_gen(*key, o, *gen);
            out.entries += 1;
        }
    }
    for (key, verify, gen, bindings) in &snapshot.docs {
        let restored: Option<Vec<BindingReport>> = bindings
            .iter()
            .map(|b| {
                restore(&b.outcome).map(|o| BindingReport {
                    name: b.name.clone(),
                    span: Span {
                        start: b.span.0 as usize,
                        end: b.span.1 as usize,
                    },
                    outcome: o,
                })
            })
            .collect();
        if let Some(bindings) = restored {
            let n = bindings.len();
            let report = CheckReport {
                bindings,
                rechecked: 0,
                reused: n,
                blocked: 0,
                waves: 0,
            };
            shared.insert_doc_report_with_gen(*key, *verify, Arc::new(report), *gen);
            out.docs += 1;
        }
    }
    {
        let mut fe = shared.frontend();
        for c in &snapshot.chunks {
            if fe.absorb_slice(c) {
                out.chunks += 1;
            }
        }
    }
    // Resume past the snapshot's generation: everything restored reads
    // as "last touched at generation ≤ header's", fresh work reads
    // newer.
    shared.cache().set_generation(out.generation);
    out
}

// --------------------------------------------------------- checkpointer

/// The stop flag + condvar pair that drives a periodic background
/// loop. Extracted from the checkpointer as a standalone type so
/// `tests/model/` can model-check the wakeup protocol directly: a
/// `signal` can never be lost, no matter how it interleaves with the
/// loop's first lock acquisition or a wait — the flag is re-checked
/// under the lock *before every wait*, so a signal that lands early is
/// seen without its notification.
///
/// The stop lock carries `lockrank::PERSIST_STOP`, the lowest rank in
/// the table, because the tick callback runs while it is held and
/// acquires hub locks (frontend, stripes, bank shards) underneath.
pub struct StopSignal {
    stop: lockrank::Mutex<bool>,
    cvar: lockrank::Condvar,
}

impl Default for StopSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl StopSignal {
    /// A fresh, un-signalled stop.
    pub fn new() -> StopSignal {
        StopSignal {
            stop: lockrank::Mutex::new(lockrank::PERSIST_STOP, "service.persist.stop", false),
            cvar: lockrank::Condvar::new(lockrank::PERSIST_STOP, "service.persist.stop.cv"),
        }
    }

    /// Signal the loop to stop and wake it if it is waiting. One-way
    /// and idempotent.
    pub fn signal(&self) {
        *self.stop.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cvar.notify_all();
    }

    /// Has the stop been signalled?
    pub fn stopped(&self) -> bool {
        *self.stop.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Run `on_tick` every `interval` until signalled. The flag is
    /// checked before the first wait (a stop signalled between `spawn`
    /// and the loop's first lock acquisition has already had its
    /// notification — waiting for the timeout would stall the caller a
    /// full interval) and re-checked after every wakeup; the tick runs
    /// with the stop lock held, so `signal` callers block for at most
    /// one in-flight tick and the loop exits on the next iteration.
    pub fn run(&self, interval: Duration, mut on_tick: impl FnMut()) {
        let mut stopped = self.stop.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if *stopped {
                return;
            }
            let (guard, timeout) = self
                .cvar
                .wait_timeout(stopped, interval)
                .unwrap_or_else(PoisonError::into_inner);
            stopped = guard;
            if *stopped {
                return;
            }
            if timeout.timed_out() {
                on_tick();
            }
        }
    }
}

/// A background thread that snapshots the hub every `interval` — the
/// `serve --cache-dir` crash-safety story: a killed server loses at
/// most one interval of warm state, and the atomic-rename protocol
/// means it never loses the previous snapshot.
pub struct Checkpointer {
    stop: Arc<StopSignal>,
    handle: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
    epoch: u64,
    cfg: PersistConfig,
}

impl Checkpointer {
    /// Start checkpointing `shared` every `interval`.
    pub fn checkpoint_every(
        shared: Arc<Shared>,
        epoch: u64,
        cfg: PersistConfig,
        interval: Duration,
    ) -> Checkpointer {
        let stop = Arc::new(StopSignal::new());
        let handle = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                stop.run(interval, || {
                    let t0 = Instant::now();
                    match save(&shared, epoch, &cfg) {
                        Ok(out) => {
                            let extras = [
                                ("bytes", Val::U(out.bytes)),
                                ("evicted", Val::U(out.evicted)),
                            ];
                            shared.tracer().emit(
                                &Record::new("span", "checkpoint")
                                    .dur(t0.elapsed())
                                    .extras(&extras),
                            );
                        }
                        // The structured replacement for the old
                        // stderr line: the failure is already on
                        // `checkpoint_failures` (counted in `save`),
                        // and the detail goes to the tracer.
                        Err(e) => {
                            let detail = e.to_string();
                            shared.tracer().warn(
                                "checkpoint-failed",
                                TraceCtx::default(),
                                &[("error", Val::S(&detail))],
                            );
                        }
                    }
                })
            })
        };
        Checkpointer {
            stop,
            handle: Some(handle),
            shared,
            epoch,
            cfg,
        }
    }

    /// Stop the thread and take a final snapshot (the on-shutdown
    /// checkpoint).
    ///
    /// # Errors
    ///
    /// The final save's I/O error, if any.
    pub fn finish(mut self) -> io::Result<SaveOutcome> {
        self.stop.signal();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        save(&self.shared, self.epoch, &self.cfg)
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        // Best effort: un-finished checkpointers still stop their
        // thread; the final save is `finish`'s job.
        self.stop.signal();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{analyze, EngineSel};
    use crate::exec::Executor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "freezeml-persist-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn warm_hub(src: &str) -> Shared {
        let shared = Shared::new();
        let a = analyze(src, &Options::default(), EngineSel::Uf).unwrap();
        Executor::new(1, Options::default(), EngineSel::Uf).run(&a, &shared);
        shared
    }

    const SRC: &str = "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n";

    #[test]
    fn save_load_round_trips_the_verdict_cache() {
        let dir = tmp_dir("roundtrip");
        let cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = warm_hub(SRC);
        let n = shared.cache().len();
        assert!(n >= 2);
        let saved = save(&shared, epoch(&opts), &cfg).unwrap();
        assert_eq!(saved.entries, n);
        assert_eq!(saved.evicted, 0);

        let fresh = Shared::new();
        let out = load(&fresh, epoch(&opts), &cfg);
        assert!(out.loaded, "{:?}", out.warning);
        assert_eq!(out.entries, n);
        assert!(out.warning.is_none());

        // A check on the restored hub is pure reuse — and render-free.
        let renders = fresh.bank().renders();
        let a = analyze(SRC, &opts, EngineSel::Uf).unwrap();
        let r = Executor::new(1, opts, EngineSel::Uf).run(&a, &fresh);
        assert_eq!((r.rechecked, r.reused), (0, 2));
        assert!(r.all_typed());
        assert_eq!(r.binding("p").unwrap().outcome.display(), "Int * Bool");
        assert_eq!(fresh.bank().renders(), renders, "renders came seeded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_silent_cold_start() {
        let dir = tmp_dir("missing");
        let out = load(&Shared::new(), 42, &PersistConfig::new(&dir));
        assert!(!out.loaded);
        assert!(out.warning.is_none(), "no file, no warning");
    }

    #[test]
    fn wrong_epoch_falls_back_cold_with_a_warning() {
        let dir = tmp_dir("epoch");
        let cfg = PersistConfig::new(&dir);
        let shared = warm_hub(SRC);
        save(&shared, 111, &cfg).unwrap();
        let fresh = Shared::new();
        let out = load(&fresh, 222, &cfg);
        assert!(!out.loaded);
        assert!(out.warning.unwrap().contains("epoch"));
        assert_eq!(fresh.cache().len(), 0, "nothing applied");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bitflips_fall_back_cold() {
        let dir = tmp_dir("corrupt");
        let cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = warm_hub(SRC);
        save(&shared, epoch(&opts), &cfg).unwrap();
        let valid = std::fs::read(cfg.file()).unwrap();

        // Every truncation: never a panic, never partial state.
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            valid.len() / 2,
            valid.len() - 1,
        ] {
            std::fs::write(cfg.file(), &valid[..cut]).unwrap();
            let fresh = Shared::new();
            let out = load(&fresh, epoch(&opts), &cfg);
            assert!(!out.loaded, "truncated at {cut} must not load");
            assert!(out.warning.is_some());
            assert_eq!(fresh.cache().len(), 0);
        }

        // A payload bit flip trips the checksum.
        let mut flipped = valid.clone();
        let mid = HEADER_LEN + (flipped.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(cfg.file(), &flipped).unwrap();
        let out = load(&Shared::new(), epoch(&opts), &cfg);
        assert!(!out.loaded);
        assert!(out.warning.unwrap().contains("checksum"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_advance_across_saves_and_loads() {
        let dir = tmp_dir("gen");
        let cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = warm_hub(SRC);
        assert_eq!(shared.cache().generation(), 0);
        let s1 = save(&shared, epoch(&opts), &cfg).unwrap();
        assert_eq!(s1.generation, 0);
        assert_eq!(shared.cache().generation(), 1, "save advances");

        let fresh = Shared::new();
        let out = load(&fresh, epoch(&opts), &cfg);
        assert_eq!(out.generation, 1, "load resumes past the header");
        assert_eq!(fresh.cache().generation(), 1);
        let s2 = save(&fresh, epoch(&opts), &cfg).unwrap();
        assert_eq!(s2.generation, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_tiny_budget_evicts_oldest_generations_first() {
        let dir = tmp_dir("evict");
        let mut cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = Shared::new();
        let mut exec = Executor::new(1, opts, EngineSel::Uf);
        // Two programs checked at different generations: the second is
        // fresher.
        let a = analyze("let old1 = 1;;\nlet old2 = 2;;\n", &opts, EngineSel::Uf).unwrap();
        exec.run(&a, &shared);
        // Age the first batch: save (advances the generation)…
        save(&shared, epoch(&opts), &cfg).unwrap();
        let b = analyze("let fresh = true;;\n", &opts, EngineSel::Uf).unwrap();
        exec.run(&b, &shared);

        // …then squeeze: room for the header + roughly one entry only.
        cfg.max_bytes = 220;
        let out = save(&shared, epoch(&opts), &cfg).unwrap();
        assert!(out.evicted > 0, "tiny budget must evict");
        assert!(shared.evictions() > 0);
        assert!(
            std::fs::metadata(cfg.file()).unwrap().len() <= cfg.max_bytes,
            "file respects the cap"
        );
        // The fresh entry survived in preference to the old ones.
        let fresh_hub = Shared::new();
        let loaded = load(&fresh_hub, epoch(&opts), &cfg);
        assert!(loaded.loaded, "{:?}", loaded.warning);
        let r = exec_into(&fresh_hub, "let fresh = true;;\n");
        assert_eq!((r.rechecked, r.reused), (0, 1), "newest stayed warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn exec_into(shared: &Shared, src: &str) -> CheckReport {
        let opts = Options::default();
        let a = analyze(src, &opts, EngineSel::Uf).unwrap();
        Executor::new(1, opts, EngineSel::Uf).run(&a, shared)
    }

    #[test]
    fn checkpointer_takes_a_final_snapshot_on_finish() {
        let dir = tmp_dir("ckpt");
        let cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = Arc::new(warm_hub(SRC));
        let ck = Checkpointer::checkpoint_every(
            Arc::clone(&shared),
            epoch(&opts),
            cfg.clone(),
            Duration::from_secs(3600), // never fires in-test
        );
        assert!(!cfg.file().exists());
        let out = ck.finish().unwrap();
        assert!(out.entries >= 2);
        assert!(cfg.file().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a stop signalled before the checkpoint thread first
    /// acquires its lock used to lose the wakeup — the thread then sat
    /// in `wait_timeout` for the full interval (an hour here) with the
    /// flag already set, stalling `finish`. Many quick start/finish
    /// cycles reliably hit the race window.
    #[test]
    fn finish_immediately_after_start_does_not_stall() {
        let dir = tmp_dir("ckpt-race");
        let cfg = PersistConfig::new(&dir);
        let opts = Options::default();
        let shared = Arc::new(warm_hub(SRC));
        for _ in 0..200 {
            let ck = Checkpointer::checkpoint_every(
                Arc::clone(&shared),
                epoch(&opts),
                cfg.clone(),
                Duration::from_secs(3600),
            );
            ck.finish().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
