//! Live exposition of the hub's metrics: the `stats` (JSON snapshot)
//! and `metrics` (Prometheus text) protocol commands.
//!
//! Everything here reads the hub's [`freezeml_obs::Registry`] plus the
//! live structure sizes (scheme bank, caches, parse frontend) — the
//! same numbers `CheckReport` counters sum to, now queryable from a
//! running server instead of reconstructed offline. Latencies come out
//! of the log-bucketed histograms as both derived percentiles
//! (`p50_us`/`p90_us`/`p99_us`, octave-accurate) and the raw non-empty
//! buckets, so a client can compute any quantile itself.
//!
//! The Prometheus rendering is the plain text exposition format:
//! `# TYPE` lines, `counter`/`gauge`/`histogram` kinds, cumulative
//! `_bucket{le="…"}` series (in seconds) with `_sum`/`_count`. Bucket
//! series are emitted sparsely — only where the cumulative count
//! changes, plus `+Inf` — which is valid exposition and keeps the
//! payload proportional to observed spread, not to the 40-bucket
//! domain.

use crate::protocol::Json;
use crate::shared::Shared;
use freezeml_obs::{bucket_le_ns, Cmd, HistSnapshot, Snapshot};
use std::fmt::Write as _;

/// Microseconds (JSON exposition unit) from a nanosecond value.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// A latency histogram as JSON: derived percentiles plus the non-empty
/// buckets as `[le_us, count]` pairs.
fn hist_json(h: &HistSnapshot) -> Json {
    let buckets: Vec<Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            let le = if bucket_le_ns(i) == u64::MAX {
                Json::Str("+Inf".into())
            } else {
                Json::Num(us(bucket_le_ns(i)))
            };
            Json::Arr(vec![le, Json::Num(c as f64)])
        })
        .collect();
    Json::obj([
        ("count", Json::Num(h.count() as f64)),
        ("p50_us", Json::Num(us(h.p50_ns()))),
        ("p90_us", Json::Num(us(h.p90_ns()))),
        ("p99_us", Json::Num(us(h.p99_ns()))),
        ("mean_us", Json::Num(us(h.mean_ns()))),
        ("buckets_us", Json::Arr(buckets)),
    ])
}

fn rate(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}

/// The `stats` response: one JSON object snapshotting every counter,
/// cache, and latency histogram the hub tracks.
pub fn stats_json(shared: &Shared) -> Json {
    let s = shared.metrics().snapshot();
    let (parse_hits, parse_misses, chunks) = {
        let fe = shared.frontend();
        (fe.parse_hits(), fe.parse_misses(), fe.chunk_count())
    };
    let bank = shared.bank();

    let commands = Json::Obj(
        s.commands
            .iter()
            .filter(|c| c.count > 0)
            .map(|c| {
                (c.cmd.name().to_string(), {
                    let mut o = vec![
                        ("count".to_string(), Json::Num(c.count as f64)),
                        ("errors".to_string(), Json::Num(c.errors as f64)),
                    ];
                    if let Json::Obj(h) = hist_json(&c.latency) {
                        // The histogram's own `count` duplicates ours.
                        o.extend(h.into_iter().filter(|(k, _)| k != "count"));
                    }
                    Json::Obj(o)
                })
            })
            .collect(),
    );

    let load_failures = Json::Obj(
        s.cache_load_failures
            .iter()
            .map(|(reason, n)| (reason.clone(), Json::Num(*n as f64)))
            .collect(),
    );

    Json::obj([
        ("ok", Json::Bool(true)),
        ("commands", commands),
        ("sessions", Json::Num(s.sessions as f64)),
        ("connections", Json::Num(s.connections as f64)),
        ("slow_requests", Json::Num(s.slow_requests as f64)),
        (
            "reports",
            Json::obj([
                ("bindings", Json::Num(s.bindings as f64)),
                ("rechecked", Json::Num(s.rechecked as f64)),
                ("reused", Json::Num(s.reused as f64)),
                ("blocked", Json::Num(s.blocked as f64)),
                ("waves", Json::Num(s.waves as f64)),
            ]),
        ),
        (
            "caches",
            Json::obj([
                (
                    "verdict",
                    Json::obj([
                        ("hits", Json::Num(s.verdict_hits as f64)),
                        ("misses", Json::Num(s.verdict_misses as f64)),
                        ("hit_rate", rate(s.verdict_hits, s.verdict_misses)),
                        ("entries", Json::Num(shared.cache().len() as f64)),
                    ]),
                ),
                (
                    "doc",
                    Json::obj([
                        ("hits", Json::Num(s.doc_hits as f64)),
                        ("misses", Json::Num(s.doc_misses as f64)),
                        ("hit_rate", rate(s.doc_hits, s.doc_misses)),
                        ("entries", Json::Num(shared.doc_reports_len() as f64)),
                    ]),
                ),
                (
                    "parse",
                    Json::obj([
                        ("hits", Json::Num(parse_hits as f64)),
                        ("misses", Json::Num(parse_misses as f64)),
                        ("hit_rate", rate(parse_hits, parse_misses)),
                        ("entries", Json::Num(chunks as f64)),
                    ]),
                ),
                (
                    "scheme",
                    Json::obj([
                        ("renders", Json::Num(bank.renders() as f64)),
                        ("render_hits", Json::Num(bank.render_hits() as f64)),
                        ("nodes", Json::Num(bank.len() as f64)),
                    ]),
                ),
            ]),
        ),
        (
            "resilience",
            Json::obj([
                ("requests_shed", Json::Num(s.requests_shed as f64)),
                ("deadline_exceeded", Json::Num(s.deadline_exceeded as f64)),
                ("draining", Json::Bool(s.draining != 0)),
                (
                    "session_thread_deaths",
                    Json::Num(s.session_thread_deaths as f64),
                ),
                (
                    "failpoint_trips",
                    Json::Obj(
                        s.failpoint_trips
                            .iter()
                            .map(|(site, n)| (site.clone(), Json::Num(*n as f64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "persistence",
            Json::obj([
                ("evictions", Json::Num(s.evictions as f64)),
                ("loads", Json::Num(s.cache_loads as f64)),
                ("load_failures", load_failures),
                ("checkpoints", Json::Num(s.checkpoints as f64)),
                (
                    "checkpoint_failures",
                    Json::Num(s.checkpoint_failures as f64),
                ),
                ("checkpoint_bytes", Json::Num(s.checkpoint_bytes as f64)),
                ("checkpoint", hist_json(&s.checkpoint_duration)),
                ("generation", Json::Num(shared.cache().generation() as f64)),
            ]),
        ),
    ])
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn write_counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn write_gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// One histogram's cumulative bucket/sum/count series, with an
/// optional fixed label pair (the `# TYPE` line is the caller's).
fn write_hist_series(out: &mut String, name: &str, label: Option<(&str, &str)>, h: &HistSnapshot) {
    let lbl = |extra: &str| -> String {
        match label {
            Some((k, v)) => {
                if extra.is_empty() {
                    format!("{{{k}=\"{v}\"}}")
                } else {
                    format!("{{{k}=\"{v}\",{extra}}}")
                }
            }
            None => {
                if extra.is_empty() {
                    String::new()
                } else {
                    format!("{{{extra}}}")
                }
            }
        }
    };
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = bucket_le_ns(i);
        if le == u64::MAX {
            continue; // folded into +Inf below
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            lbl(&format!("le=\"{}\"", seconds(le)))
        );
    }
    let _ = writeln!(out, "{name}_bucket{} {}", lbl("le=\"+Inf\""), h.count());
    let _ = writeln!(out, "{name}_sum{} {}", lbl(""), seconds(h.sum_ns));
    let _ = writeln!(out, "{name}_count{} {}", lbl(""), h.count());
}

/// The `metrics` response body: Prometheus plain-text exposition of the
/// full registry plus live structure sizes.
pub fn prometheus_text(shared: &Shared) -> String {
    let s: Snapshot = shared.metrics().snapshot();
    let (parse_hits, parse_misses, chunks) = {
        let fe = shared.frontend();
        (fe.parse_hits(), fe.parse_misses(), fe.chunk_count())
    };
    let bank = shared.bank();
    let mut out = String::with_capacity(4096);

    let _ = writeln!(out, "# TYPE freezeml_requests_total counter");
    for c in &s.commands {
        let _ = writeln!(
            out,
            "freezeml_requests_total{{cmd=\"{}\"}} {}",
            c.cmd.name(),
            c.count
        );
    }
    let _ = writeln!(out, "# TYPE freezeml_request_errors_total counter");
    for c in &s.commands {
        let _ = writeln!(
            out,
            "freezeml_request_errors_total{{cmd=\"{}\"}} {}",
            c.cmd.name(),
            c.errors
        );
    }
    let _ = writeln!(out, "# TYPE freezeml_request_latency_seconds histogram");
    for c in &s.commands {
        if c.count > 0 {
            write_hist_series(
                &mut out,
                "freezeml_request_latency_seconds",
                Some(("cmd", c.cmd.name())),
                &c.latency,
            );
        }
    }

    write_counter(&mut out, "freezeml_connections_total", s.connections);
    write_counter(&mut out, "freezeml_sessions_total", s.sessions);
    write_counter(&mut out, "freezeml_slow_requests_total", s.slow_requests);

    write_counter(&mut out, "freezeml_requests_shed_total", s.requests_shed);
    write_counter(
        &mut out,
        "freezeml_deadline_exceeded_total",
        s.deadline_exceeded,
    );
    write_gauge(&mut out, "freezeml_draining", s.draining);
    write_counter(
        &mut out,
        "freezeml_session_thread_deaths_total",
        s.session_thread_deaths,
    );
    let _ = writeln!(out, "# TYPE freezeml_failpoint_trips_total counter");
    for (site, n) in &s.failpoint_trips {
        let _ = writeln!(out, "freezeml_failpoint_trips_total{{site=\"{site}\"}} {n}");
    }

    write_counter(&mut out, "freezeml_report_bindings_total", s.bindings);
    write_counter(&mut out, "freezeml_report_rechecked_total", s.rechecked);
    write_counter(&mut out, "freezeml_report_reused_total", s.reused);
    write_counter(&mut out, "freezeml_report_blocked_total", s.blocked);
    write_counter(&mut out, "freezeml_report_waves_total", s.waves);

    let _ = writeln!(out, "# TYPE freezeml_cache_hits_total counter");
    for (cache, n) in [
        ("verdict", s.verdict_hits),
        ("doc", s.doc_hits),
        ("parse", parse_hits),
        ("render", bank.render_hits()),
    ] {
        let _ = writeln!(out, "freezeml_cache_hits_total{{cache=\"{cache}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE freezeml_cache_misses_total counter");
    for (cache, n) in [
        ("verdict", s.verdict_misses),
        ("doc", s.doc_misses),
        ("parse", parse_misses),
    ] {
        let _ = writeln!(out, "freezeml_cache_misses_total{{cache=\"{cache}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE freezeml_cache_entries gauge");
    for (cache, n) in [
        ("verdict", shared.cache().len()),
        ("doc", shared.doc_reports_len()),
        ("parse", chunks),
    ] {
        let _ = writeln!(out, "freezeml_cache_entries{{cache=\"{cache}\"}} {n}");
    }
    write_gauge(&mut out, "freezeml_scheme_nodes", bank.len() as u64);
    write_counter(&mut out, "freezeml_scheme_renders_total", bank.renders());

    write_counter(&mut out, "freezeml_cache_evictions_total", s.evictions);
    write_counter(&mut out, "freezeml_cache_loads_total", s.cache_loads);
    let _ = writeln!(out, "# TYPE freezeml_cache_load_failures_total counter");
    for (reason, n) in &s.cache_load_failures {
        let _ = writeln!(
            out,
            "freezeml_cache_load_failures_total{{reason=\"{reason}\"}} {n}"
        );
    }
    write_counter(&mut out, "freezeml_checkpoints_total", s.checkpoints);
    write_counter(
        &mut out,
        "freezeml_checkpoint_failures_total",
        s.checkpoint_failures,
    );
    write_counter(
        &mut out,
        "freezeml_checkpoint_bytes_total",
        s.checkpoint_bytes,
    );
    let _ = writeln!(out, "# TYPE freezeml_checkpoint_seconds histogram");
    write_hist_series(
        &mut out,
        "freezeml_checkpoint_seconds",
        None,
        &s.checkpoint_duration,
    );
    write_gauge(
        &mut out,
        "freezeml_cache_generation",
        shared.cache().generation(),
    );

    out
}

/// Classify a parsed request for per-command metrics.
pub(crate) fn cmd_of(req: &crate::protocol::Request) -> Cmd {
    use crate::protocol::Request as R;
    match req {
        R::Open { .. } => Cmd::Open,
        R::Edit { .. } => Cmd::Edit,
        R::Check { .. } => Cmd::Check,
        R::TypeOf { .. } => Cmd::TypeOf,
        R::Elaborate { .. } => Cmd::Elaborate,
        R::Close { .. } => Cmd::Close,
        R::Stats => Cmd::Stats,
        R::Metrics => Cmd::Metrics,
        R::Shutdown => Cmd::Shutdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::protocol::handle_line;
    use crate::service::{Service, ServiceConfig};
    use freezeml_core::Options;
    use std::collections::HashSet;

    fn warmed_service() -> Service {
        let mut s = Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 1,
        });
        handle_line(
            &mut s,
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##,
        );
        handle_line(&mut s, r#"{"cmd":"check","doc":"m"}"#);
        handle_line(&mut s, r#"{"cmd":"type-of","doc":"m","name":"f"}"#);
        s
    }

    #[test]
    fn stats_json_reports_commands_reports_and_caches() {
        let s = warmed_service();
        let v = stats_json(s.shared());
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let reports = v.get("reports").expect("reports object");
        assert_eq!(reports.get("bindings").and_then(Json::as_num), Some(4.0));
        assert_eq!(reports.get("rechecked").and_then(Json::as_num), Some(2.0));
        assert_eq!(reports.get("reused").and_then(Json::as_num), Some(2.0));
        let open = v
            .get("commands")
            .and_then(|c| c.get("open"))
            .expect("open row");
        assert_eq!(open.get("count").and_then(Json::as_num), Some(1.0));
        assert!(open.get("p50_us").and_then(Json::as_num).unwrap_or(0.0) > 0.0);
        let verdict = v
            .get("caches")
            .and_then(|c| c.get("verdict"))
            .expect("verdict cache");
        assert_eq!(verdict.get("misses").and_then(Json::as_num), Some(2.0));
        // The snapshot is itself valid JSON end to end.
        assert!(Json::parse(&v.to_string()).is_ok());
    }

    #[test]
    fn prometheus_text_is_well_formed_exposition() {
        let s = warmed_service();
        let text = prometheus_text(s.shared());
        let mut typed: HashSet<&str> = HashSet::new();
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("metric name");
                let kind = it.next().expect("metric kind");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
                assert!(typed.insert(name), "duplicate TYPE for {name}");
            } else {
                // A sample: name{labels} value — the name must have been
                // typed already (histograms add _bucket/_sum/_count).
                let name = line.split(['{', ' ']).next().expect("sample name");
                let base = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(name);
                assert!(
                    typed.contains(base) || typed.contains(name),
                    "sample `{name}` precedes its TYPE line"
                );
                let value = line.rsplit(' ').next().expect("value");
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            }
        }
        // Cumulative buckets end at +Inf with the total count.
        assert!(
            text.contains("freezeml_request_latency_seconds_bucket{cmd=\"open\",le=\"+Inf\"} 1")
        );
    }

    #[test]
    fn resilience_counters_are_exposed_in_both_formats() {
        let s = warmed_service();
        let m = s.shared().metrics();
        m.requests_shed.add(2);
        m.deadline_exceeded.inc();
        m.failpoint_trips.inc("persist.write");
        m.session_thread_deaths.inc();
        s.shared().request_drain();
        let v = stats_json(s.shared());
        let r = v.get("resilience").expect("resilience object");
        assert_eq!(r.get("requests_shed").and_then(Json::as_num), Some(2.0));
        assert_eq!(r.get("deadline_exceeded").and_then(Json::as_num), Some(1.0));
        assert_eq!(r.get("draining"), Some(&Json::Bool(true)));
        assert_eq!(
            r.get("session_thread_deaths").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            r.get("failpoint_trips")
                .and_then(|f| f.get("persist.write"))
                .and_then(Json::as_num),
            Some(1.0)
        );
        let text = prometheus_text(s.shared());
        assert!(text.contains("freezeml_requests_shed_total 2"));
        assert!(text.contains("freezeml_deadline_exceeded_total 1"));
        assert!(text.contains("freezeml_draining 1"));
        assert!(text.contains("freezeml_session_thread_deaths_total 1"));
        assert!(text.contains("freezeml_failpoint_trips_total{site=\"persist.write\"} 1"));
    }

    #[test]
    fn hit_rate_is_null_when_nothing_was_probed() {
        let s = Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 1,
        });
        let v = stats_json(s.shared());
        let verdict = v.get("caches").and_then(|c| c.get("verdict")).unwrap();
        assert_eq!(verdict.get("hit_rate"), Some(&Json::Null));
    }
}
