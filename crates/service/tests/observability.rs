//! PR 8 tentpole coverage: the flight recorder end to end.
//!
//! * `stats` over a **live socket** answers non-zero per-command latency
//!   histograms, and its report totals are exactly the sums of the
//!   `CheckReport` counters the same connection was served.
//! * JSONL traces validate against the record schema — every line is
//!   one JSON object with `ts_us`/`ev`/`name` and the hierarchical
//!   `conn`/`sess`/`req` ids; spans carry `dur_us`.
//! * The slow-request log fires through the same structured pipeline.
//! * A corrupt snapshot increments `cache_load_failures` with a reason
//!   label and the service still starts cold (satellite regression for
//!   the old unstructured `eprintln!`).
//! * Checkpoint saves land in the registry (count, bytes, duration) and
//!   are visible through `stats`.

use freezeml_service::{
    persist, EngineSel, Json, PersistConfig, ServeOptions, Service, ServiceConfig, Shared,
    SocketServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn cfg() -> ServiceConfig {
    ServiceConfig {
        engine: EngineSel::Uf,
        workers: 2,
        ..ServiceConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("freezeml-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    Json::parse(response.trim_end()).expect("response is JSON")
}

fn num(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for p in path {
        cur = cur
            .get(p)
            .unwrap_or_else(|| panic!("missing field `{p}` in {v}"));
    }
    cur.as_num()
        .unwrap_or_else(|| panic!("`{path:?}` not a number"))
}

#[test]
fn live_socket_stats_match_the_reports_the_connection_was_served() {
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(),
        Arc::clone(&shared),
        2,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Drive a session and sum the counters the client was actually served.
    let mut served = (0.0, 0.0, 0.0, 0.0, 0.0); // bindings, rechecked, reused, blocked, waves
    let mut tally = |r: &Json| {
        served.0 += match r.get("bindings") {
            Some(Json::Arr(b)) => b.len() as f64,
            _ => panic!("report without bindings: {r}"),
        };
        served.1 += num(r, &["rechecked"]);
        served.2 += num(r, &["reused"]);
        served.3 += num(r, &["blocked"]);
        served.4 += num(r, &["waves"]);
    };
    let open = r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##;
    tally(&request(&mut stream, &mut reader, open));
    tally(&request(
        &mut stream,
        &mut reader,
        r#"{"cmd":"check","doc":"m"}"#,
    ));
    let edit = r##"{"cmd":"edit","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\nlet q = f 1;;\n"}"##;
    tally(&request(&mut stream, &mut reader, edit));
    let r = request(
        &mut stream,
        &mut reader,
        r#"{"cmd":"type-of","doc":"m","name":"q"}"#,
    );
    assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));

    // Now ask the *server* what it saw.
    let stats = request(&mut stream, &mut reader, r#"{"cmd":"stats"}"#);
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(num(&stats, &["reports", "bindings"]), served.0);
    assert_eq!(num(&stats, &["reports", "rechecked"]), served.1);
    assert_eq!(num(&stats, &["reports", "reused"]), served.2);
    assert_eq!(num(&stats, &["reports", "blocked"]), served.3);
    assert_eq!(num(&stats, &["reports", "waves"]), served.4);

    // Per-command latency histograms are non-zero for every command the
    // connection issued.
    for (cmd, count) in [
        ("open", 1.0),
        ("check", 1.0),
        ("edit", 1.0),
        ("type-of", 1.0),
    ] {
        assert_eq!(num(&stats, &["commands", cmd, "count"]), count, "{cmd}");
        assert!(
            num(&stats, &["commands", cmd, "p50_us"]) > 0.0,
            "{cmd} histogram is empty"
        );
        let buckets = stats
            .get("commands")
            .and_then(|c| c.get(cmd))
            .and_then(|c| c.get("buckets_us"))
            .expect("buckets");
        assert!(matches!(buckets, Json::Arr(b) if !b.is_empty()), "{cmd}");
    }

    // Cache hit rates are consistent with the counters: the verdict
    // cache missed on every recheck, hit on executor-probed reuse.
    assert_eq!(num(&stats, &["caches", "verdict", "misses"]), served.1);
    let hits = num(&stats, &["caches", "verdict", "hits"]);
    assert!(
        hits <= served.2,
        "verdict hits {hits} > reused {}",
        served.2
    );

    // The Prometheus rendering agrees with the JSON snapshot.
    let metrics = request(&mut stream, &mut reader, r#"{"cmd":"metrics"}"#);
    let text = metrics
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics text");
    assert!(text.contains(&format!(
        "freezeml_report_bindings_total {}",
        served.0 as u64
    )));
    assert!(text.contains("freezeml_request_latency_seconds_bucket{cmd=\"open\""));

    drop((stream, reader));
    server.shutdown();
}

#[test]
fn junk_fields_on_introspection_commands_get_structured_errors() {
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(),
        Arc::clone(&shared),
        1,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for line in [
        r#"{"cmd":"stats","doc":"m"}"#,
        r#"{"cmd":"metrics","verbose":true}"#,
        r#"{"cmd":"stats","junk":[1,2]}"#,
    ] {
        let r = request(&mut stream, &mut reader, line);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{line}");
        let msg = r
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .expect("structured error");
        assert!(msg.contains("takes no field"), "{line} → {msg}");
    }
    // …and the session is still alive and answering.
    let r = request(&mut stream, &mut reader, r#"{"cmd":"stats"}"#);
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    // The invalid requests were themselves counted.
    assert_eq!(num(&r, &["commands", "invalid", "count"]), 3.0);
    drop((stream, reader));
    server.shutdown();
}

#[test]
fn traces_are_schema_valid_jsonl_and_the_slow_log_fires() {
    use freezeml_obs::Tracer;

    let dir = temp_dir("trace");
    let trace_path = dir.join("trace.jsonl");
    let shared = Arc::new(Shared::new());
    assert!(shared.set_tracer(Tracer::to_file(&trace_path).unwrap()));
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(),
        Arc::clone(&shared),
        1,
        ServeOptions {
            slow_ms: Some(0), // every request is "slow": the log must fire
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let open = r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##;
    request(&mut stream, &mut reader, open);
    request(&mut stream, &mut reader, r#"{"cmd":"check","doc":"m"}"#);
    let stats = request(&mut stream, &mut reader, r#"{"cmd":"stats"}"#);
    assert!(num(&stats, &["slow_requests"]) >= 2.0);
    drop((stream, reader));
    server.shutdown();

    // Validate every line against the record schema.
    let body = std::fs::read_to_string(&trace_path).unwrap();
    let mut names = std::collections::HashSet::new();
    let mut slow = 0usize;
    assert!(!body.is_empty(), "tracer wrote nothing");
    for (i, line) in body.lines().enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {i} `{line}`: {e}"));
        assert!(num(&v, &["ts_us"]) > 0.0, "line {i}");
        let ev = v.get("ev").and_then(Json::as_str).expect("ev");
        assert!(matches!(ev, "span" | "event" | "warn"), "line {i}: {ev}");
        let name = v.get("name").and_then(Json::as_str).expect("name");
        names.insert(name.to_string());
        for id in ["conn", "sess", "req"] {
            assert!(v.get(id).and_then(Json::as_num).is_some(), "line {i}: {id}");
        }
        if ev == "span" {
            assert!(v.get("dur_us").and_then(Json::as_num).is_some(), "line {i}");
        }
        if name == "slow-request" {
            slow += 1;
            assert!(
                v.get("ms").is_some() && v.get("bytes").is_some(),
                "line {i}"
            );
        }
    }
    // The span hierarchy covered the phases the session exercised.
    for want in [
        "connection",
        "parse",
        "dep-graph",
        "cache-probe",
        "infer",
        "wave",
    ] {
        assert!(names.contains(want), "no `{want}` record in the trace");
    }
    assert!(slow >= 2, "slow log fired {slow} time(s)");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_snapshot_counts_a_load_failure_and_still_starts_cold() {
    let dir = temp_dir("corrupt");
    let pcfg = PersistConfig {
        dir: dir.clone(),
        max_bytes: persist::DEFAULT_MAX_BYTES,
    };

    // Seed a real snapshot, then corrupt its payload.
    {
        let shared = Arc::new(Shared::new());
        let mut svc = Service::with_shared(cfg(), Arc::clone(&shared));
        svc.open("m", "let x = 1;;\nlet y = x;;\n").unwrap();
        persist::save(&shared, persist::epoch(&cfg().opts), &pcfg).unwrap();
    }
    let path = dir.join(persist::CACHE_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    // A fresh hub loads it: cold fallback, counted and labelled.
    let shared = Arc::new(Shared::new());
    let out = persist::load(&shared, persist::epoch(&cfg().opts), &pcfg);
    assert!(!out.loaded, "corrupt snapshot must not warm the hub");
    assert!(out.warning.is_some(), "cold fallback carries the reason");
    let s = shared.metrics().snapshot();
    let total: u64 = s.cache_load_failures.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 1, "exactly one load failure counted");
    assert_eq!(
        s.cache_load_failures.first().map(|(r, _)| r.as_str()),
        Some("checksum"),
        "the failure carries its reason label"
    );

    // …and the hub still serves from cold.
    let mut svc = Service::with_shared(cfg(), Arc::clone(&shared));
    let report = svc.open("m", "let x = 1;;\n").unwrap();
    assert!(report.all_typed());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_saves_land_in_the_registry_and_in_stats() {
    let dir = temp_dir("ckpt");
    let pcfg = PersistConfig {
        dir: dir.clone(),
        max_bytes: persist::DEFAULT_MAX_BYTES,
    };
    let shared = Arc::new(Shared::new());
    let mut svc = Service::with_shared(cfg(), Arc::clone(&shared));
    svc.open("m", "let x = 1;;\nlet y = x;;\n").unwrap();
    let out = persist::save(&shared, persist::epoch(&cfg().opts), &pcfg).unwrap();
    assert!(out.bytes > 0);

    let s = shared.metrics().snapshot();
    assert_eq!(s.checkpoints, 1);
    assert_eq!(s.checkpoint_bytes, out.bytes);
    assert_eq!(s.checkpoint_duration.count(), 1);

    // The same numbers through the protocol's `stats` command.
    let stats = freezeml_service::stats_json(&shared);
    assert_eq!(num(&stats, &["persistence", "checkpoints"]), 1.0);
    assert_eq!(
        num(&stats, &["persistence", "checkpoint_bytes"]),
        out.bytes as f64
    );
    assert_eq!(num(&stats, &["persistence", "checkpoint", "count"]), 1.0);
    let _ = std::fs::remove_dir_all(&dir);
}
