//! Model-checked concurrency invariants for the serving layer.
//!
//! Run with `RUSTFLAGS='--cfg interleave' cargo test -p
//! freezeml_service --test model`. The admission gate, the drain flag,
//! the checkpointer's stop signal, and the failpoint table all route
//! their synchronization through the crate `sync` alias (and
//! `freezeml_obs::lockrank`), so under the model cfg every lock and
//! atomic below is a schedule point and the DFS explores the real
//! production interleavings.
#![cfg(interleave)]

use freezeml_service::fault;
use freezeml_service::persist::StopSignal;
use freezeml_service::shared::Shared;
use freezeml_service::sock::Gate;
use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::Arc;
use std::time::Duration;

/// The admission gate under contention: with a bound of 1 and three
/// racing arrivals, every arrival is decided exactly once (admitted or
/// shed), at most one admission is ever in flight, and the pending
/// count returns to zero — in every interleaving.
#[test]
fn gate_bound_holds_and_every_arrival_is_decided() {
    interleave::model(|| {
        let gate = Arc::new(Gate::new(1));
        let admitted = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let admitted = Arc::clone(&admitted);
                let shed = Arc::clone(&shed);
                let in_flight = Arc::clone(&in_flight);
                interleave::thread::spawn(move || {
                    if gate.try_admit() {
                        // ord: Relaxed — the assertion only needs RMW
                        // atomicity; the gate itself orders admission.
                        let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                        assert!(now <= 1, "admission bound of 1 exceeded: {now} in flight");
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                        gate.claimed();
                        admitted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let a = admitted.load(Ordering::Relaxed);
        let s = shed.load(Ordering::Relaxed);
        assert_eq!(a + s, 3, "an arrival was neither admitted nor shed");
        assert!(a >= 1, "serialized admissions mean at least one must win");
        assert_eq!(gate.pending(), 0, "pending count leaked");
    });
}

/// The checkpointer's shutdown handshake: with spurious/timed wakeups
/// disabled (`timeouts_fire: false`), the ONLY way `run` can return is
/// the signal's notify. If the stop flag were checked outside the lock
/// — the classic lost-wakeup — some interleaving parks the ticker
/// after `signal` already fired and the model reports a deadlock.
#[test]
fn stop_signal_shutdown_wakeup_is_never_lost() {
    let b = interleave::Builder {
        timeouts_fire: false,
        ..Default::default()
    };
    b.check(|| {
        let stop = Arc::new(StopSignal::new());
        let ticker = {
            let stop = Arc::clone(&stop);
            interleave::thread::spawn(move || {
                stop.run(Duration::from_secs(3600), || {});
            })
        };
        let stopper = {
            let stop = Arc::clone(&stop);
            interleave::thread::spawn(move || stop.signal())
        };
        stopper.join().unwrap();
        ticker.join().unwrap();
        assert!(stop.stopped(), "run returned but the flag is down");
    })
    .unwrap();
}

/// Drain is monotonic and published: once any observer sees
/// `draining() == true` it can never flip back, and after the drainer
/// joins, the flag is visible to everyone.
#[test]
fn drain_flag_is_monotonic_and_visible_after_join() {
    interleave::model(|| {
        let shared = Arc::new(Shared::new());
        let drainer = {
            let shared = Arc::clone(&shared);
            interleave::thread::spawn(move || shared.request_drain())
        };
        let watcher = {
            let shared = Arc::clone(&shared);
            interleave::thread::spawn(move || {
                let first = shared.draining();
                let second = shared.draining();
                (first, second)
            })
        };
        let (first, second) = watcher.join().unwrap();
        assert!(!(first && !second), "draining flag went backwards");
        drainer.join().unwrap();
        assert!(shared.draining(), "drain not visible after join");
    });
}

/// The failpoint fast path: a probe that sees the armed flag must also
/// see the armed table — `install`'s Release store (inside the table
/// lock) pairs with `hit`'s Acquire load, so no interleaving can
/// observe "active but empty" and silently swallow an armed trip.
#[test]
fn armed_failpoint_is_never_active_but_empty() {
    interleave::model(|| {
        fault::clear();
        let installer = interleave::thread::spawn(|| {
            fault::install("model.site=err:1").unwrap();
        });
        let prober = interleave::thread::spawn(|| {
            if fault::active() {
                // Armed flag observed: the table MUST be populated.
                let f = fault::hit("model.site");
                assert!(f.is_some(), "probe saw the armed flag but an empty table");
                true
            } else {
                false
            }
        });
        let tripped = prober.join().unwrap();
        installer.join().unwrap();
        // Exactly one trip was budgeted; whoever didn't take it, the
        // post-join probe settles the count.
        let later = fault::hit("model.site");
        if tripped {
            assert!(later.is_none(), "err:1 budget handed out twice");
        } else {
            assert!(later.is_some(), "armed site's only trip was dropped");
        }
        fault::clear();
    });
}
