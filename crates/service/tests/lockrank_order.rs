//! Pins the workspace lock-rank assignment against the serving stack's
//! REAL nesting paths — the "no lock-order inversions" audit result,
//! kept true by tests instead of by memory.
//!
//! The discipline (see `freezeml_obs::lockrank`): every thread acquires
//! locks in strictly increasing rank. The rank constants encode the
//! production nestings; these tests (a) pin the constant order itself,
//! (b) drive the deepest real nesting — a checkpoint tick, which runs
//! `save` while HOLDING the stop-signal lock — under the debug witness,
//! and (c) prove the witness fires on an inversion built from the same
//! production lock objects, so (b) passing actually means something.

use freezeml_core::Options;
use freezeml_obs::lockrank;
use freezeml_service::{persist, EngineSel, PersistConfig, Service, ServiceConfig, Shared};
use std::path::PathBuf;
use std::sync::Arc;

/// A per-test scratch directory (removed on drop).
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir =
            std::env::temp_dir().join(format!("freezeml-lockrank-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The rank constants strictly increase in the order the serving stack
/// nests them. Renumbering one without re-auditing every nesting is
/// exactly the mistake this assertion turns into a test failure.
#[test]
fn rank_constants_encode_the_production_nesting_order() {
    let order = [
        lockrank::SESSION_RX,
        lockrank::PERSIST_STOP,
        lockrank::FRONTEND,
        lockrank::DOC_REPORTS,
        lockrank::FAULT_TABLE,
        lockrank::CACHE_STRIPE,
        lockrank::TRACE_SINK,
        lockrank::METRICS_LABELS,
        lockrank::BANK_SHARD,
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "lockrank constants are no longer strictly increasing: {order:?}"
    );
}

/// The deepest production nesting, end to end under the debug witness:
/// a periodic checkpoint tick runs `persist::save` while holding the
/// stop-signal lock (PERSIST_STOP, the lowest service rank precisely
/// because of this), and `save` walks the frontend, doc reports, cache
/// stripes, and bank shards. Any inversion in that chain panics the
/// checkpointer thread, the tick never lands, and this test times out
/// loudly instead of passing.
#[test]
fn checkpoint_tick_nests_cleanly_inside_the_stop_lock() {
    let dir = TmpDir::new("tick");
    let cfg = PersistConfig::new(&dir.0);
    let shared = Arc::new(Shared::new());
    let epoch = persist::epoch(&Options::default());
    let cp = persist::Checkpointer::checkpoint_every(
        Arc::clone(&shared),
        epoch,
        cfg.clone(),
        std::time::Duration::from_millis(10),
    );
    // Give the tick real work: a checked document populates the bank,
    // the striped cache, and the doc-report table.
    let mut svc = Service::with_shared(
        ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 2,
        },
        Arc::clone(&shared),
    );
    svc.open("doc", "let id = fun x -> x;;\nlet use = id 1;;")
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cfg.file().exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "checkpointer never ticked — did the witness kill it?"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let out = cp.finish().expect("final save");
    assert!(out.bytes > 0, "checkpoint wrote nothing");
}

/// The witness is live against the production ranks: holding anything
/// at BANK_SHARD rank (the highest — a leaf) while touching the real
/// frontend lock (rank 20) is an inversion, and the debug build
/// refuses it up front rather than deadlocking in the field. Release
/// builds compile the witness out, so the pin only exists where the
/// witness does.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "lock-rank violation")]
fn acquiring_frontend_at_bank_shard_depth_panics() {
    let shared = Shared::new();
    let leaf = lockrank::Mutex::new(lockrank::BANK_SHARD, "test.leaf", ());
    let _leaf = leaf.lock();
    let _frontend = shared.frontend(); // rank 20 under rank 90: refused
}
