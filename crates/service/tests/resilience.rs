//! PR 9 tentpole: overload-safe serving. Four live-socket properties:
//!
//! 1. **Slowloris containment** — a client that connects and stalls,
//!    and a client that drips bytes slowly enough to keep resetting the
//!    kernel read timeout, both get the flat
//!    `{"ok":false,"error":"deadline"}` line and a close, while a
//!    concurrent healthy session keeps being answered.
//! 2. **Backoff completes the fleet** — 16 clients against 2 session
//!    threads and a 1-slot admission queue: some are shed with
//!    `retry-after-ms`, everyone retries with jittered backoff, every
//!    workload completes exactly, and nothing died along the way.
//! 3. **Chaos, then heal** — a concurrent workload under a fixed
//!    budget of injected faults (inference errors, wave delays, a
//!    checkpoint-write failure) completes with structured answers only;
//!    after `fault::clear()` the same hub answers *exactly* like a
//!    fresh single-threaded service, the accounting identity holds,
//!    and a snapshot saved from the survivor warms a new hub to the
//!    same verdicts.
//! 4. **Drain keeps its promises** — a drain requested while a check
//!    is in flight (made slow with an injected wave delay) still
//!    delivers that response in full, then closes at the request
//!    boundary, the server joins within the drain budget, and a final
//!    checkpoint saves.
//!
//! The failpoint table is process-global, so the tests serialize on a
//! mutex instead of relying on harness scheduling.

use freezeml_service::load::{drive_tcp, LoadMix};
use freezeml_service::sock::Admission;
use freezeml_service::{
    fault, handle_line, persist, EngineSel, GenProgram, Json, PersistConfig, ServeOptions, Service,
    ServiceConfig, Shared, SocketServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Serializes the tests: the failpoint table and its metrics are
/// process-wide.
static GATE: Mutex<()> = Mutex::new(());

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        engine: EngineSel::Uf,
        workers,
        ..ServiceConfig::default()
    }
}

/// Drop the scheduling counters a warm cache is allowed to change.
fn strip_counters(v: Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| {
                    k != "rechecked" && k != "reused" && k != "blocked" && k != "waves"
                })
                .map(|(k, v)| (k, strip_counters(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_counters).collect()),
        other => other,
    }
}

/// A per-test scratch directory (removed on drop).
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir =
            std::env::temp_dir().join(format!("freezeml-resilience-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn read_json_line(r: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    assert!(r.read_line(&mut line).unwrap() > 0, "expected a line");
    Json::parse(line.trim_end()).expect("one JSON line per response")
}

/// The flat deadline shape: `ok:false`, `error` is the *string*
/// `"deadline"` (data errors carry an object), and nothing else rides
/// along.
fn assert_deadline_line(v: &Json) {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v}");
    assert_eq!(
        v.get("error").and_then(Json::as_str),
        Some("deadline"),
        "{v}"
    );
}

#[test]
fn slowloris_clients_are_cut_off_while_a_healthy_session_stays_answered() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fault::clear();
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        3,
        ServeOptions {
            request_timeout_ms: Some(300),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        // A connect-and-stall client: never sends a byte. The kernel
        // read timeout wakes the session, which answers the flat
        // deadline line and closes.
        let stall_addr = addr.clone();
        let stall = scope.spawn(move || {
            let conn = TcpStream::connect(&stall_addr).unwrap();
            let mut r = BufReader::new(conn);
            let v = read_json_line(&mut r);
            assert_deadline_line(&v);
            let mut rest = String::new();
            assert_eq!(r.read_line(&mut rest).unwrap(), 0, "closed after the line");
        });

        // A byte-at-a-time client: each byte lands inside the kernel
        // timeout, resetting it — only the wall-clock deadline inside
        // `read_request` can catch this one. It stops dripping at the
        // budget boundary (before the server closes) so the answer is
        // never raced by a reset.
        let drip_addr = addr.clone();
        let drip = scope.spawn(move || {
            let mut conn = TcpStream::connect(&drip_addr).unwrap();
            let mut r = BufReader::new(conn.try_clone().unwrap());
            for b in br#"{"cmd":"#.iter() {
                conn.write_all(&[*b]).unwrap();
                conn.flush().unwrap();
                std::thread::sleep(Duration::from_millis(50));
            }
            let v = read_json_line(&mut r);
            assert_deadline_line(&v);
            let mut rest = String::new();
            assert_eq!(r.read_line(&mut rest).unwrap(), 0, "closed after the line");
        });

        // Meanwhile a healthy session is answered promptly.
        let mut conn = TcpStream::connect(&addr).unwrap();
        let mut r = BufReader::new(conn.try_clone().unwrap());
        let started = Instant::now();
        writeln!(conn, r#"{{"cmd":"open","doc":"h","text":"let x = 1;;"}}"#).unwrap();
        let v = read_json_line(&mut r);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v}");
        writeln!(conn, r#"{{"cmd":"type-of","doc":"h","name":"x"}}"#).unwrap();
        let v = read_json_line(&mut r);
        assert_eq!(v.get("result").and_then(Json::as_str), Some("Int"), "{v}");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "the healthy session is not queued behind the stallers: {:?}",
            started.elapsed()
        );
        drop((conn, r));

        stall.join().unwrap();
        drip.join().unwrap();
    });

    assert!(
        shared.metrics().deadline_exceeded.get() >= 2,
        "both stallers are counted"
    );
    assert_eq!(shared.metrics().session_thread_deaths.get(), 0);
    server.shutdown();
}

#[test]
fn a_shed_fleet_backs_off_and_every_workload_completes() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fault::clear();
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp_with(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        2,
        ServeOptions::default(),
        Admission {
            max_pending: 1,
            retry_after_ms: 10,
        },
    )
    .unwrap();
    let mix = LoadMix {
        clients: 16,
        bindings: 6,
        edits_per_client: 1,
        think: Duration::from_millis(2),
        salt_base: 77,
    };
    let sent = drive_tcp(server.local_addr(), &mix);
    // Per client: open + (edit, type-of, batch) + close — shed
    // attempts that were retried must not inflate the count.
    assert_eq!(sent, 16 * 5, "every client completed its whole script");
    let snap = shared.metrics().snapshot();
    assert!(
        snap.requests_shed > 0,
        "16 clients over 2 sessions + 1 queue slot must shed"
    );
    assert_eq!(snap.session_thread_deaths, 0);
    assert_eq!(
        snap.rechecked + snap.reused + snap.blocked,
        snap.bindings,
        "the accounting identity survives shedding and retries"
    );
    server.shutdown();
}

#[test]
fn a_chaos_run_answers_structurally_and_heals_to_exact_agreement() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    // A fixed fault budget: three inference checks fail internally,
    // four waves stall briefly, and the first checkpoint write fails.
    fault::install("infer.binding=err:3;infer.wave=delay:5ms*4;persist.write=err:1").unwrap();
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        4,
        ServeOptions {
            request_timeout_ms: Some(10_000),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    // 8 concurrent sessions complete their whole scripts: injected
    // inference faults surface as per-binding internal errors inside
    // `ok:true` reports (and heal on the next recheck, since internal
    // errors are never cached), never as protocol damage.
    let sent = drive_tcp(
        server.local_addr(),
        &LoadMix {
            clients: 8,
            bindings: 8,
            edits_per_client: 2,
            think: Duration::from_micros(200),
            salt_base: 31,
        },
    );
    assert_eq!(sent, 8 * 8);

    // The injected checkpoint failure is contained and counted; the
    // retry saves.
    let tmp = TmpDir::new("chaos");
    let pcfg = PersistConfig::new(&tmp.0);
    let epoch = persist::epoch(&cfg(1).opts);
    assert!(
        persist::save(&shared, epoch, &pcfg).is_err(),
        "the armed persist.write failpoint fails the first save"
    );
    assert!(shared.metrics().checkpoint_failures.get() >= 1);
    let saved = persist::save(&shared, epoch, &pcfg).unwrap();
    assert!(saved.entries > 0, "the retry persists the warm state");

    // The whole budget was spent, on the hub's labeled counter.
    let m = shared.metrics();
    assert_eq!(m.failpoint_trips.get("infer.binding"), 3);
    assert_eq!(m.failpoint_trips.get("infer.wave"), 4);
    assert_eq!(m.failpoint_trips.get("persist.write"), 1);
    fault::clear();

    // Heal: the chaos survivor answers exactly like a fresh
    // single-threaded service, on every program the fleet used.
    let snap = m.snapshot();
    assert_eq!(snap.session_thread_deaths, 0);
    assert_eq!(
        snap.rechecked + snap.reused + snap.blocked,
        snap.bindings,
        "the accounting identity survives the chaos run"
    );

    // A hub warmed from the survivor's snapshot agrees too —
    // persisted-warm ≡ from-scratch, after faults.
    let warmed = Arc::new(Shared::new());
    let out = persist::load(&warmed, epoch, &pcfg);
    assert!(out.loaded, "the snapshot loads: {:?}", out.warning);

    for seed in 100..104u64 {
        let g = GenProgram::generate(8, seed);
        let open = format!(
            r#"{{"cmd":"open","doc":"cmp","text":{}}}"#,
            Json::Str(g.text())
        );
        let mut scratch = Service::new(cfg(1));
        let mut survivor = Service::with_shared(cfg(1), Arc::clone(&shared));
        let mut warm = Service::with_shared(cfg(1), Arc::clone(&warmed));
        let want = strip_counters(handle_line(&mut scratch, &open));
        assert_eq!(
            strip_counters(handle_line(&mut survivor, &open)),
            want,
            "seed {seed}: the healed hub disagrees with scratch"
        );
        assert_eq!(
            strip_counters(handle_line(&mut warm, &open)),
            want,
            "seed {seed}: the warmed hub disagrees with scratch"
        );
        for i in 0..g.len() {
            let probe = format!(r#"{{"cmd":"type-of","doc":"cmp","name":"b{i}"}}"#);
            let want = strip_counters(handle_line(&mut scratch, &probe));
            assert_eq!(strip_counters(handle_line(&mut survivor, &probe)), want);
            assert_eq!(strip_counters(handle_line(&mut warm, &probe)), want);
        }
    }
    server.shutdown();
}

#[test]
fn a_drain_mid_check_delivers_the_in_flight_response_then_checkpoints() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    // The next wave stalls long enough for the drain to land mid-check.
    fault::install("infer.wave=delay:300ms*1").unwrap();
    let shared = Arc::new(Shared::new());
    let server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        1,
        ServeOptions {
            request_timeout_ms: Some(5_000),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let g = GenProgram::generate(6, 5);
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut r = BufReader::new(conn.try_clone().unwrap());
    writeln!(
        conn,
        r#"{{"cmd":"open","doc":"d","text":{}}}"#,
        Json::Str(g.text())
    )
    .unwrap();
    conn.flush().unwrap();
    // The open is now in flight (its first wave sleeps 300 ms); drain
    // the hub out from under it.
    std::thread::sleep(Duration::from_millis(50));
    shared.request_drain();
    assert_eq!(shared.metrics().snapshot().draining, 1);

    // The in-flight request is still answered in full…
    let v = read_json_line(&mut r);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{v}");
    match v.get("bindings") {
        Some(Json::Arr(items)) => assert_eq!(items.len(), 6, "the report is complete: {v}"),
        other => panic!("no bindings array: {other:?}"),
    }
    // …and the session closes at the request boundary, without an
    // error line.
    let mut rest = String::new();
    assert_eq!(r.read_line(&mut rest).unwrap(), 0, "clean close");

    // The drained server winds down inside the budget.
    assert!(
        server.join_timeout(Some(Duration::from_secs(5))),
        "no session had to be abandoned"
    );
    fault::clear();

    // The final checkpoint captures the drained hub's warm state.
    let tmp = TmpDir::new("drain");
    let pcfg = PersistConfig::new(&tmp.0);
    let saved = persist::save(&shared, persist::epoch(&cfg(1).opts), &pcfg).unwrap();
    assert!(saved.entries > 0, "the in-flight work was checkpointed");
}
