//! Differential acceptance for `defaulted` reports: the names the service
//! reports for value-restriction residuals must be identical across
//! engines (`core`, `uf`, `both` are three routes to the same verdict)
//! and must never collide with a name the rendered scheme itself uses —
//! neither a free named variable nor a canonically lettered binder.

use freezeml_core::Options;
use freezeml_service::{EngineSel, Service, ServiceConfig};

fn svc(engine: EngineSel) -> Service {
    Service::new(ServiceConfig {
        opts: Options::default(),
        engine,
        workers: 1,
    })
}

fn typed_outcome(engine: EngineSel, src: &str, name: &str) -> (String, Vec<String>) {
    let mut s = svc(engine);
    let r = s.open("d", src).unwrap();
    assert!(r.all_typed(), "{engine:?}: {:?}", r.bindings);
    let b = r.binding(name).unwrap();
    match &b.outcome {
        freezeml_service::Outcome::Typed {
            scheme, defaulted, ..
        } => (scheme.to_string(), defaulted.clone()),
        other => panic!("{engine:?}: {name} not typed: {other:?}"),
    }
}

/// The names `forall`-binders display under in a rendered scheme.
fn binder_names(scheme: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = scheme;
    while let Some(i) = rest.find("forall") {
        rest = &rest[i + "forall".len()..];
        for word in rest.split_whitespace() {
            if let Some(stripped) = word.strip_suffix('.') {
                if !stripped.is_empty() {
                    out.push(stripped.to_string());
                }
                break;
            }
            out.push(word.to_string());
        }
        if let Some(j) = rest.find('.') {
            rest = &rest[j + 1..];
        } else {
            break;
        }
    }
    out
}

/// The paper's `single id` residual, sitting next to a *named* dependency
/// binder: the dependency's scheme enters the union-find engine with its
/// source-name hint (`a`) but enters the core oracle as a nameless
/// materialised tree — exactly the asymmetry that used to make the two
/// engines letter the residual differently.
const NAMED_BINDER_PROGRAM: &str = "#use prelude\n\
    let (myid : forall a. a -> a) = fun x -> x;;\n\
    let p = pair ~myid (single id);;\n";

#[test]
fn defaulted_names_agree_across_engines() {
    let (scheme_core, core) = typed_outcome(EngineSel::Core, NAMED_BINDER_PROGRAM, "p");
    let (scheme_uf, uf) = typed_outcome(EngineSel::Uf, NAMED_BINDER_PROGRAM, "p");
    let (scheme_both, both) = typed_outcome(EngineSel::Both, NAMED_BINDER_PROGRAM, "p");
    assert_eq!(scheme_core, scheme_uf);
    assert_eq!(scheme_core, scheme_both);
    assert_eq!(
        core, uf,
        "core and union-find report different defaulted names"
    );
    assert_eq!(core, both, "both-mode must match the per-engine reports");
    assert_eq!(core.len(), 1, "exactly one residual is grounded");
}

/// A defaulted name must not collide with a binder of the scheme it is
/// reported against: `(forall ?. ? -> ?) * List (Int -> Int)` letters its
/// binder `a`, so the residual must be named past it.
const UNNAMED_BINDER_PROGRAM: &str = "#use prelude\n\
    let q = pair $(fun x -> x) (single id);;\n";

#[test]
fn defaulted_names_avoid_scheme_binders() {
    for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
        let (scheme, defaulted) = typed_outcome(engine, UNNAMED_BINDER_PROGRAM, "q");
        let binders = binder_names(&scheme);
        assert!(
            !binders.is_empty(),
            "{engine:?}: expected a quantified scheme, got {scheme}"
        );
        for d in &defaulted {
            assert!(
                !binders.contains(d),
                "{engine:?}: defaulted name `{d}` collides with a binder of `{scheme}`"
            );
        }
        assert_eq!(defaulted.len(), 1, "{engine:?}: one residual in {scheme}");
    }
}

/// The baseline case from the executor tests, pinned across all engines:
/// no binders, one residual, first free letter.
#[test]
fn defaulted_names_baseline_single_id() {
    let src = "#use prelude\nlet xs = single id;;\n";
    for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
        let (scheme, defaulted) = typed_outcome(engine, src, "xs");
        assert_eq!(scheme, "List (Int -> Int)", "{engine:?}");
        assert_eq!(defaulted, ["a"], "{engine:?}");
    }
}
