//! PR 6 satellite: a panicking inference worker must not take down the
//! service. Pre-PR, the executor `join().expect(…)`-ed its worker
//! threads, so one panic anywhere in a check propagated out of
//! `Service::check`, tore down the session, and (with the old global
//! `Mutex<SchemeStore>`) poisoned the scheme store for every *other*
//! session sharing it. Now panics are caught at the wave boundary, the
//! binding is reported as an `Internal` error, the worker's session
//! state is discarded, and the hub keeps answering.
//!
//! The deliberate panic is injected with the `FREEZEML_TEST_PANIC_ON`
//! env hook (read once per check run). Environment variables are
//! process-global and tests in one binary run concurrently, so this
//! file holds a **single** test function that walks through every
//! scenario sequentially.

use freezeml_service::{handle_line, Json, Service, ServiceConfig, Shared, SocketServer};
use freezeml_service::{EngineSel, Outcome, ServeOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const PANIC_HOOK: &str = "FREEZEML_TEST_PANIC_ON";

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        engine: EngineSel::Uf,
        workers,
        ..ServiceConfig::default()
    }
}

fn internal_errors(report: &freezeml_service::CheckReport) -> Vec<&str> {
    report
        .bindings
        .iter()
        .filter_map(|b| match &b.outcome {
            Outcome::Error { class, message } if class == "Internal" => Some(message.as_str()),
            _ => None,
        })
        .map(|m| m as &str)
        .collect()
}

#[test]
fn a_panicking_binding_is_an_internal_error_not_a_crash() {
    // ── In-process, single worker: the panic is caught per binding.
    std::env::set_var(PANIC_HOOK, "boom");
    let mut svc = Service::new(cfg(1));
    let report = svc
        .open(
            "m",
            "let a = 1;;\nlet boom = 2;;\nlet b = true;;\nlet c = a;;\n",
        )
        .expect("the program parses; the panic is contained");
    let internal = internal_errors(report);
    assert_eq!(internal.len(), 1, "exactly the panicking binding fails");
    assert!(
        internal[0].contains("deliberate test panic"),
        "the panic payload is surfaced: {internal:?}"
    );
    let typed = report
        .bindings
        .iter()
        .filter(|b| b.outcome.is_typed())
        .count();
    assert_eq!(typed, 3, "every other binding still checks");

    // ── The same service keeps answering after the panic…
    assert_eq!(
        svc.type_of("m", "a").unwrap().unwrap().outcome.display(),
        "Int"
    );

    // ── …and once the hook is lifted, a recheck heals the binding:
    // Internal errors are never cached.
    std::env::remove_var(PANIC_HOOK);
    let healed = svc.check("m").unwrap();
    assert!(
        healed.bindings.iter().all(|b| b.outcome.is_typed()),
        "a recheck after the panic heals: {:?}",
        healed
            .bindings
            .iter()
            .map(|b| b.outcome.display())
            .collect::<Vec<_>>()
    );

    // ── Multi-worker: a panic on one worker thread does not kill the
    // wave running on the others, and the worker pool survives.
    std::env::set_var(PANIC_HOOK, "boom");
    let mut svc = Service::new(cfg(4));
    let text: String = (0..12)
        .map(|i| format!("let x{i} = {i};;\n"))
        .chain(std::iter::once("let boom = 0;;\n".to_string()))
        .collect();
    let report = svc.open("m", &text).expect("contained again");
    assert_eq!(internal_errors(report).len(), 1);
    assert_eq!(
        report
            .bindings
            .iter()
            .filter(|b| b.outcome.is_typed())
            .count(),
        12
    );

    // ── The protocol layer reports the binding with status "error" and
    // the session object stays usable.
    let r = handle_line(&mut svc, r#"{"cmd":"type-of","doc":"m","name":"x3"}"#);
    assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));

    // ── Over the socket, with the *shared* bank: a session that trips
    // the panic leaves the hub answering other sessions (the old global
    // lock would have been poisoned here).
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        2,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut a = TcpStream::connect(&addr).unwrap();
    let mut ra = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    writeln!(
        a,
        r#"{{"cmd":"open","doc":"d","text":"let boom = 1;;\nlet y = 2;;"}}"#
    )
    .unwrap();
    ra.read_line(&mut line).unwrap();
    let r = Json::parse(line.trim_end()).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "panic contained: {r}");

    let mut b = TcpStream::connect(&addr).unwrap();
    let mut rb = BufReader::new(b.try_clone().unwrap());
    writeln!(b, r#"{{"cmd":"open","doc":"d","text":"let z = true;;"}}"#).unwrap();
    line.clear();
    rb.read_line(&mut line).unwrap();
    let r = Json::parse(line.trim_end()).unwrap();
    assert_eq!(
        r.get("ok"),
        Some(&Json::Bool(true)),
        "the hub survives another session's panic: {r}"
    );

    std::env::remove_var(PANIC_HOOK);
    drop((a, ra, b, rb));
    server.shutdown();
}
