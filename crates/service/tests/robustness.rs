//! PR 6 satellite, reworked on PR 9's fault layer: a panicking
//! inference worker must not take down the service. Pre-PR-6, the
//! executor `join().expect(…)`-ed its worker threads, so one panic
//! anywhere in a check propagated out of `Service::check`, tore down
//! the session, and (with the old global `Mutex<SchemeStore>`) poisoned
//! the scheme store for every *other* session sharing it. Now panics
//! are caught at the wave boundary, the binding is reported as an
//! `Internal` error, the worker's session state is discarded, and the
//! hub keeps answering.
//!
//! The deliberate panic is injected with the `infer.binding=panic`
//! failpoint (which replaced the old `FREEZEML_TEST_PANIC_ON` env
//! hook). The failpoint table is process-global and tests in one binary
//! run concurrently, so this file holds a **single** test function that
//! walks through every scenario sequentially.

use freezeml_service::fault;
use freezeml_service::{handle_line, Json, Service, ServiceConfig, Shared, SocketServer};
use freezeml_service::{EngineSel, Outcome, ServeOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        engine: EngineSel::Uf,
        workers,
        ..ServiceConfig::default()
    }
}

fn internal_errors(report: &freezeml_service::CheckReport) -> Vec<&str> {
    report
        .bindings
        .iter()
        .filter_map(|b| match &b.outcome {
            Outcome::Error { class, message } if class == "Internal" => Some(message.as_str()),
            _ => None,
        })
        .map(|m| m as &str)
        .collect()
}

#[test]
fn a_panicking_binding_is_an_internal_error_not_a_crash() {
    // ── In-process, single worker: the panic is caught per binding.
    // The failpoint trips on the first `infer.binding` site reached, so
    // the bindings are kept independent of each other: whichever one
    // the panic lands on, the other three must still check.
    fault::install("infer.binding=panic:1").unwrap();
    let mut svc = Service::new(cfg(1));
    let report = svc
        .open(
            "m",
            "let boom = 2;;\nlet a = 1;;\nlet b = true;;\nlet c = 4;;\n",
        )
        .expect("the program parses; the panic is contained");
    let internal = internal_errors(report);
    assert_eq!(internal.len(), 1, "exactly one binding trips the budget");
    assert!(
        internal[0].contains("injected panic"),
        "the panic payload is surfaced: {internal:?}"
    );
    let typed = report
        .bindings
        .iter()
        .filter(|b| b.outcome.is_typed())
        .count();
    assert_eq!(typed, 3, "every other binding still checks");
    let survivor = report
        .bindings
        .iter()
        .find(|b| b.outcome.is_typed() && b.name != "b")
        .map(|b| b.name.clone())
        .expect("a typed Int binding survives");
    assert_eq!(
        svc.shared().metrics().failpoint_trips.get("infer.binding"),
        1,
        "the trip landed on the labeled counter"
    );

    // ── The same service keeps answering after the panic…
    assert_eq!(
        svc.type_of("m", &survivor)
            .unwrap()
            .unwrap()
            .outcome
            .display(),
        "Int"
    );

    // ── …and with the budget exhausted (and then the table cleared), a
    // recheck heals the binding: Internal errors are never cached.
    fault::clear();
    let healed = svc.check("m").unwrap();
    assert!(
        healed.bindings.iter().all(|b| b.outcome.is_typed()),
        "a recheck after the panic heals: {:?}",
        healed
            .bindings
            .iter()
            .map(|b| b.outcome.display())
            .collect::<Vec<_>>()
    );

    // ── Multi-worker: a panic on one worker thread does not kill the
    // wave running on the others, and the worker pool survives.
    fault::install("infer.binding=panic:1").unwrap();
    let mut svc = Service::new(cfg(4));
    let text: String = (0..12)
        .map(|i| format!("let x{i} = {i};;\n"))
        .chain(std::iter::once("let boom = 0;;\n".to_string()))
        .collect();
    let report = svc.open("m", &text).expect("contained again");
    assert_eq!(internal_errors(report).len(), 1);
    assert_eq!(
        report
            .bindings
            .iter()
            .filter(|b| b.outcome.is_typed())
            .count(),
        12
    );
    fault::clear();

    // ── The protocol layer reports the binding with status "error" and
    // the session object stays usable.
    let r = handle_line(&mut svc, r#"{"cmd":"type-of","doc":"m","name":"x3"}"#);
    assert_eq!(r.get("result").and_then(Json::as_str), Some("Int"));

    // ── Over the socket, with the *shared* bank: a session that trips
    // the panic leaves the hub answering other sessions (the old global
    // lock would have been poisoned here).
    fault::install("infer.binding=panic:1").unwrap();
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        2,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut a = TcpStream::connect(&addr).unwrap();
    let mut ra = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    writeln!(
        a,
        r#"{{"cmd":"open","doc":"d","text":"let boom = 1;;\nlet y = 2;;"}}"#
    )
    .unwrap();
    ra.read_line(&mut line).unwrap();
    let r = Json::parse(line.trim_end()).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "panic contained: {r}");

    let mut b = TcpStream::connect(&addr).unwrap();
    let mut rb = BufReader::new(b.try_clone().unwrap());
    writeln!(b, r#"{{"cmd":"open","doc":"d","text":"let z = true;;"}}"#).unwrap();
    line.clear();
    rb.read_line(&mut line).unwrap();
    let r = Json::parse(line.trim_end()).unwrap();
    assert_eq!(
        r.get("ok"),
        Some(&Json::Bool(true)),
        "the hub survives another session's panic: {r}"
    );

    fault::clear();
    drop((a, ra, b, rb));
    server.shutdown();
}
