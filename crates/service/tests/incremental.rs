//! The incremental ≡ from-scratch property: for random programs and
//! random single-binding edits, the service's warm recheck produces
//! exactly the verdicts a cold check of the same text produces —
//! α-equivalent schemes (canonicalised schemes render identically) and
//! identical error classes — with both engines in play
//! (`EngineSel::Both` runs the union-find engine against the
//! paper-literal oracle per binding, so a warm/cold comparison under
//! `Both` is simultaneously a cross-engine differential run).
//!
//! Two corpora:
//!
//! * deterministic generated programs ([`GenProgram`]) with same-class
//!   random edits (always well typed);
//! * the Figure 1 corpus, packaged as one program of top-level bindings
//!   (standard-mode rows without extra environments), with edits that
//!   swap a binding's body for another row's — exercising both success
//!   and error outcomes through the cache.

use freezeml_core::Options;
use freezeml_service::{CheckReport, EngineSel, GenProgram, Service, ServiceConfig};

fn svc() -> Service {
    Service::new(ServiceConfig {
        opts: Options::default(),
        engine: EngineSel::Both,
        workers: 2,
    })
}

/// Render a report to its comparable essence: binding names plus
/// canonical verdicts (scheme text / error class / blocker).
fn essence(r: &CheckReport) -> Vec<(String, String)> {
    r.bindings
        .iter()
        .map(|b| {
            let v = match &b.outcome {
                freezeml_service::Outcome::Typed {
                    scheme, defaulted, ..
                } => {
                    format!("ok {scheme} [{}]", defaulted.len())
                }
                freezeml_service::Outcome::Error { class, .. } => format!("err {class}"),
                freezeml_service::Outcome::Blocked { on } => format!("blocked {on}"),
                freezeml_service::Outcome::Disagreement { core, uf } => {
                    panic!("engine disagreement on `{}`: {core} / {uf}", b.name)
                }
            };
            (b.name.clone(), v)
        })
        .collect()
}

/// Check `text` warm (through the running service) and cold (through a
/// fresh service), and demand identical essences.
fn warm_equals_scratch(warm_svc: &mut Service, text: &str, context: &str) {
    let warm = essence(&warm_svc.edit("doc", text).unwrap().clone());
    let cold = essence(&svc().open("doc", text).unwrap().clone());
    assert_eq!(warm, cold, "incremental ≢ from-scratch ({context})");
}

#[test]
fn generated_programs_incremental_equals_scratch() {
    // SplitMix-style deterministic "random" choices.
    let mut state = 0x001C_4E11_E7A1_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for seed in [3u64, 17, 91] {
        let gen = GenProgram::generate(48, seed);
        let mut s = svc();
        s.open("doc", &gen.text()).unwrap();
        for round in 0..12u64 {
            let i = (next() % 48) as usize;
            let edited = gen.with_edit(i, round * 1000 + next() % 1000);
            warm_equals_scratch(&mut s, &edited.text(), &format!("seed {seed}, edit b{i}"));
            // And edit back (the restore path must also agree).
            warm_equals_scratch(&mut s, &gen.text(), &format!("seed {seed}, restore b{i}"));
        }
    }
}

/// The Figure 1 rows usable as top-level bindings: standard mode, no
/// extra environment.
fn figure1_bodies() -> Vec<&'static str> {
    freezeml_corpus::EXAMPLES
        .iter()
        .filter(|e| e.mode == freezeml_corpus::Mode::Standard && e.extra_env.is_empty())
        .map(|e| e.src)
        .collect()
}

fn figure1_program(bodies: &[&str], swap: Option<(usize, usize)>) -> String {
    let mut text = String::from("#use prelude\n");
    for (i, body) in bodies.iter().enumerate() {
        let body = match swap {
            Some((at, from)) if at == i => bodies[from],
            _ => body,
        };
        text.push_str(&format!("let fig{i} = {body};;\n"));
    }
    // A frozen-reuse tail referencing earlier bindings, so the corpus
    // program is not purely independent rows.
    text.push_str("let tail_id = $(fun x -> x);;\n");
    text.push_str("let tail_use = poly ~tail_id;;\n");
    text
}

#[test]
fn figure1_corpus_incremental_equals_scratch() {
    let bodies = figure1_bodies();
    assert!(bodies.len() >= 40, "most Figure 1 rows qualify");
    let base = figure1_program(&bodies, None);
    let mut s = svc();
    s.open("doc", &base).unwrap();
    // The corpus mixes well-typed and ill-typed rows; the warm recheck
    // must simply agree with scratch (not be all-typed).
    warm_equals_scratch(&mut s, &base, "figure 1 recheck");
    // Swap a handful of bindings' bodies for other rows' and back.
    for (at, from) in [(0usize, 5usize), (12, 30), (30, 12), (41, 2)] {
        let edited = figure1_program(&bodies, Some((at, from)));
        warm_equals_scratch(&mut s, &edited, &format!("figure 1 swap {at}<-{from}"));
        warm_equals_scratch(&mut s, &base, &format!("figure 1 restore {at}"));
    }
}

#[test]
fn structural_edits_incremental_equals_scratch() {
    // Beyond body edits: insert, delete, and reorder declarations.
    let gen = GenProgram::generate(30, 7);
    let base = gen.text();
    let mut s = svc();
    s.open("doc", &base).unwrap();

    // Insert an unrelated binding mid-program.
    let mut lines: Vec<&str> = base.lines().collect();
    lines.insert(15, "let inserted = 123456;;");
    warm_equals_scratch(&mut s, &(lines.join("\n") + "\n"), "insert");

    // Delete a leaf binding (the last one has no dependents).
    let deleted: Vec<&str> = base.lines().take(base.lines().count() - 1).collect();
    warm_equals_scratch(&mut s, &(deleted.join("\n") + "\n"), "delete last");

    // Duplicate the program under shadowing: every binding redeclared.
    let doubled = format!("{base}{}", base.replace("#use prelude\n", ""));
    warm_equals_scratch(&mut s, &doubled, "shadow-duplicate");

    // And back to base.
    warm_equals_scratch(&mut s, &base, "restore");
}
