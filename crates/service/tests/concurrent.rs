//! PR 6 tentpole stress: N concurrent socket sessions against one hub
//! must answer **exactly** what a single-threaded replay of each
//! session's script answers — the shared sharded scheme bank and
//! striped outcome cache may change *when* work happens, never *what*
//! comes back. Counters (`rechecked`/`reused`/`waves`) are the one
//! sanctioned difference: a session may reuse outcomes another session
//! computed, so they are stripped before comparison.
//!
//! A second test holds the α-class discipline at service level: across
//! concurrently-running sessions of one hub, two bindings get the same
//! `SchemeId` iff their schemes render identically (canonical renderings
//! are injective on α-classes — the single-lock store's partition).

use freezeml_service::{
    handle_line, EngineSel, GenProgram, Json, Outcome, Request, ServeOptions, Service,
    ServiceConfig, Shared, SocketServer,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        engine: EngineSel::Uf,
        workers,
        ..ServiceConfig::default()
    }
}

/// Drop the scheduling counters a shared cache is allowed to change.
fn strip_counters(v: Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| {
                    k != "rechecked" && k != "reused" && k != "blocked" && k != "waves"
                })
                .map(|(k, v)| (k, strip_counters(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_counters).collect()),
        other => other,
    }
}

/// Client `k`'s request script: open, probe, a few edits (unique salts
/// per client), a batched edit+check round, probe again, close. Clients
/// share generator seeds (and the doc name), so sessions collide on the
/// same α-classes and cache keys from all sides.
fn script(k: usize) -> Vec<String> {
    let g = GenProgram::generate(12, 100 + (k % 4) as u64);
    let doc = "d".to_string();
    let open = |text: String| {
        Request::Open {
            doc: doc.clone(),
            text,
        }
        .to_json()
        .to_string()
    };
    let edit = |text: String| {
        Request::Edit {
            doc: doc.clone(),
            text,
        }
        .to_json()
        .to_string()
    };
    let type_of = |name: String| {
        Request::TypeOf {
            doc: doc.clone(),
            name,
        }
        .to_json()
        .to_string()
    };
    let mut lines = vec![open(g.text())];
    for i in 0..g.len() {
        lines.push(type_of(g.name(i)));
    }
    for i in [1usize, 5, 9] {
        lines.push(edit(g.edited_text(i, (k * 100 + i) as u64)));
    }
    // One batched line: restore + recheck + probe in a single request.
    let batch = Json::Arr(vec![
        Request::Edit {
            doc: doc.clone(),
            text: g.text(),
        }
        .to_json(),
        Request::Check { doc: doc.clone() }.to_json(),
        Request::TypeOf {
            doc: doc.clone(),
            name: g.name(0),
        }
        .to_json(),
    ]);
    lines.push(batch.to_string());
    lines.push(Request::Close { doc }.to_json().to_string());
    lines
}

/// The single-threaded truth: a fresh one-worker service replaying the
/// script in-process.
fn reference(lines: &[String]) -> Vec<Json> {
    let mut svc = Service::new(cfg(1));
    lines
        .iter()
        .map(|l| strip_counters(handle_line(&mut svc, l)))
        .collect()
}

#[test]
fn concurrent_sessions_answer_exactly_like_a_single_threaded_replay() {
    const CLIENTS: usize = 8;
    let shared = Arc::new(Shared::new());
    let mut server = SocketServer::spawn_tcp(
        "127.0.0.1:0",
        cfg(1),
        Arc::clone(&shared),
        4,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let addr = addr.clone();
                scope.spawn(move || -> Result<(), String> {
                    let lines = script(k);
                    let want = reference(&lines);
                    let stream = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
                    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                    let mut writer = stream;
                    for (i, (line, want)) in lines.iter().zip(&want).enumerate() {
                        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
                        let mut response = String::new();
                        reader.read_line(&mut response).map_err(|e| e.to_string())?;
                        let got = Json::parse(response.trim_end())
                            .map_err(|e| format!("client {k} line {i}: {e}"))?;
                        let got = strip_counters(got);
                        if &got != want {
                            return Err(format!(
                                "client {k} request {i} diverged from the replay:\n  sent {line}\n  want {want}\n  got  {got}"
                            ));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.shutdown();
    for r in outcomes {
        r.unwrap();
    }
    // PR 9 satellite: the socket pool lost no thread while serving.
    assert_eq!(
        shared.metrics().snapshot().session_thread_deaths,
        0,
        "a session thread panicked during the concurrent run"
    );
}

#[test]
fn scheme_ids_are_one_id_per_alpha_class_across_concurrent_sessions() {
    const SESSIONS: usize = 8;
    let shared = Arc::new(Shared::new());

    // Every session opens a program (seeds collide across sessions) and
    // reports each typed binding as (rendered scheme, SchemeId).
    let collected: Vec<Vec<(String, freezeml_service::SchemeId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|k| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut svc = Service::with_shared(cfg(1), shared);
                    let g = GenProgram::generate(16, 7 + (k % 3) as u64);
                    let report = svc.open("d", &g.text()).unwrap();
                    report
                        .bindings
                        .iter()
                        .filter_map(|b| match &b.outcome {
                            Outcome::Typed { id, scheme, .. } => Some((scheme.to_string(), *id)),
                            _ => None,
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // One id per rendering, one rendering per id — the global-lock
    // store's partition, now under concurrent interning.
    let mut by_scheme: HashMap<&str, freezeml_service::SchemeId> = HashMap::new();
    let mut by_id: HashMap<freezeml_service::SchemeId, &str> = HashMap::new();
    let mut seen = 0usize;
    for session in &collected {
        assert!(!session.is_empty(), "every session typed its bindings");
        for (scheme, id) in session {
            seen += 1;
            assert_eq!(
                *by_scheme.entry(scheme).or_insert(*id),
                *id,
                "two ids for one α-class `{scheme}`"
            );
            assert_eq!(
                *by_id.entry(*id).or_insert(scheme),
                scheme.as_str(),
                "one id covers two α-classes"
            );
        }
    }
    assert!(seen >= SESSIONS * 16, "all bindings were collected");
}

/// Satellite: the executor's accounting invariant. Every report must
/// decompose its bindings exactly — `rechecked + reused + blocked ==
/// bindings.len()` — whichever engine checked them, however warm the
/// cache was, and whatever the edit did (including edits that break a
/// binding and block its dependents).
#[test]
fn every_report_decomposes_bindings_into_rechecked_reused_blocked() {
    let assert_invariant = |report: &freezeml_service::CheckReport, what: &str| {
        assert_eq!(
            report.rechecked + report.reused + report.blocked,
            report.bindings.len(),
            "{what}: rechecked {} + reused {} + blocked {} != {} bindings",
            report.rechecked,
            report.reused,
            report.blocked,
            report.bindings.len()
        );
    };
    for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
        let mut svc = Service::new(ServiceConfig {
            engine,
            workers: 2,
            ..ServiceConfig::default()
        });
        // A generated program through an edit trace.
        let g = GenProgram::generate(14, 42);
        let r = svc.open("d", &g.text()).unwrap();
        assert_invariant(r, "cold open");
        for (i, salt) in [(1usize, 7u64), (6, 8), (11, 9)] {
            let r = svc.edit("d", &g.edited_text(i, salt)).unwrap();
            assert_invariant(r, "edit");
        }
        let r = svc.check("d").unwrap().clone();
        assert_invariant(&r, "warm check");
        assert_eq!(r.blocked, 0, "nothing blocked in a clean program");

        // An error mid-program blocks its dependents; the blocked ones
        // must be *counted*, not silently dropped from the accounting.
        let broken = "let bad = missing;;\nlet child = bad;;\nlet grandchild = child;;\n";
        let r = svc.open("e", broken).unwrap();
        assert_invariant(r, "broken open");
        assert_eq!(r.blocked, 2, "child and grandchild are blocked");
        // A warm recheck is served from the document-report cache with
        // every binding relabelled `reused` — the decomposition must
        // still balance, and the per-binding verdicts still say blocked.
        let r = svc.check("e").unwrap().clone();
        assert_invariant(&r, "broken recheck");
        let still_blocked = r
            .bindings
            .iter()
            .filter(|b| matches!(b.outcome, freezeml_service::Outcome::Blocked { .. }))
            .count();
        assert_eq!(still_blocked, 2, "blocked verdicts survive the warm path");
    }
}

/// Satellite: the hub registry is the same truth the clients saw. Under
/// 8 racing sessions, the registry's report totals must equal the sums
/// of the `CheckReport` counters the sessions were actually served —
/// sharded counters may never lose or invent an increment.
#[test]
fn registry_totals_match_client_reports_under_concurrency() {
    const SESSIONS: usize = 8;
    let shared = Arc::new(Shared::new());
    let totals: Vec<(usize, usize, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|k| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut svc = Service::with_shared(cfg(1), shared);
                    let g = GenProgram::generate(10, 30 + (k % 3) as u64);
                    let mut sum = (0, 0, 0, 0, 0);
                    let mut add = |r: &freezeml_service::CheckReport| {
                        sum.0 += r.bindings.len();
                        sum.1 += r.rechecked;
                        sum.2 += r.reused;
                        sum.3 += r.blocked;
                        sum.4 += r.waves;
                    };
                    add(&svc.open("d", &g.text()).unwrap().clone());
                    for i in [2usize, 7] {
                        add(&svc
                            .edit("d", &g.edited_text(i, (k * 10 + i) as u64))
                            .unwrap()
                            .clone());
                    }
                    add(&svc.check("d").unwrap().clone());
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let want = totals.iter().fold((0, 0, 0, 0, 0), |a, t| {
        (a.0 + t.0, a.1 + t.1, a.2 + t.2, a.3 + t.3, a.4 + t.4)
    });
    let s = shared.metrics().snapshot();
    assert_eq!(
        (s.bindings, s.rechecked, s.reused, s.blocked, s.waves),
        (
            want.0 as u64,
            want.1 as u64,
            want.2 as u64,
            want.3 as u64,
            want.4 as u64
        ),
        "registry drifted from what the sessions were served"
    );
    assert_eq!(
        s.bindings,
        s.rechecked + s.reused + s.blocked,
        "registry-level accounting invariant"
    );
    // Verdict-cache traffic: every recheck was a miss; reuse counts a
    // verdict hit only when the executor actually probed (whole reports
    // served from the document cache relabel bindings as reused without
    // touching the verdict cache, so hits can lag reused).
    assert_eq!(s.verdict_misses, s.rechecked);
    assert!(
        s.verdict_hits <= s.reused,
        "verdict hits {} cannot exceed reused {}",
        s.verdict_hits,
        s.reused
    );
    assert_eq!(s.sessions, SESSIONS as u64);
    // PR 9 satellite: no session thread died along the way — a panic
    // escaping the per-connection containment can never again shrink
    // the pool silently, because this counter would catch it.
    assert_eq!(s.session_thread_deaths, 0, "a session thread panicked");
}
