//! Property/fuzz coverage for the protocol's hand-rolled JSON: every
//! value the serialiser can emit must parse back to an equal value
//! (including strings full of escapes, surrogate-pair astral characters,
//! and control characters), and no input — well-formed, mutated, or
//! adversarial — may panic the parser. Malformed input must error.

use freezeml_service::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases(default: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Characters a protocol string can plausibly carry, weighted toward the
/// troublemakers: quotes, backslashes, control characters, the highest
/// BMP scalar, and astral-plane characters (serialised raw, decoded via
/// surrogate pairs when escaped).
fn random_char<R: Rng>(rng: &mut R) -> char {
    match rng.gen_range(0..10) {
        0 => '"',
        1 => '\\',
        2 => ['\n', '\r', '\t', '\u{8}', '\u{c}', '\u{0}', '\u{1f}'][rng.gen_range(0..7)],
        3 => ['\u{7f}', '\u{fffd}', '\u{ffff}', '\u{2028}', '\u{2029}'][rng.gen_range(0..5)],
        4 => ['😀', '𝕏', '\u{10000}', '\u{10ffff}'][rng.gen_range(0..4)],
        5 => '/',
        _ => rng.gen_range(b' '..b'\x7f') as char,
    }
}

fn random_string<R: Rng>(rng: &mut R) -> String {
    (0..rng.gen_range(0..12))
        .map(|_| random_char(rng))
        .collect()
}

fn random_json<R: Rng>(rng: &mut R, depth: usize) -> Json {
    let leaf = depth == 0 || rng.gen_range(0..10) < 4;
    if leaf {
        return match rng.gen_range(0..4) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_bool(0.5)),
            2 => {
                // Any finite f64 round-trips through Rust's shortest
                // display; mix integers, fractions, and extremes.
                let n = match rng.gen_range(0..4) {
                    0 => rng.gen_range(-1_000_000..1_000_000) as f64,
                    1 => rng.gen_range(-1_000_000..1_000_000) as f64 / 1024.0,
                    2 => f64::MAX * (rng.gen_range(1..1000) as f64 / 1000.0),
                    _ => rng.gen_range(-9_007_199_254_740_991i64..9_007_199_254_740_991) as f64,
                };
                Json::Num(n)
            }
            _ => Json::Str(random_string(rng)),
        };
    }
    if rng.gen_bool(0.5) {
        Json::Arr(
            (0..rng.gen_range(0..5))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        )
    } else {
        Json::Obj(
            (0..rng.gen_range(0..5))
                .map(|i| {
                    (
                        format!("{}{}", random_string(rng), i),
                        random_json(rng, depth - 1),
                    )
                })
                .collect(),
        )
    }
}

#[test]
fn generated_values_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x0015_09e5);
    for case in 0..cases(2000) {
        let v = random_json(&mut rng, 3);
        let text = v.to_string();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: `{text}` does not re-parse: {e}"));
        assert_eq!(back, v, "case {case}: `{text}`");
        // Serialisation is a normal form: printing the re-parse is
        // byte-identical.
        assert_eq!(back.to_string(), text, "case {case}");
    }
}

/// Escaped spellings decode to the same value as the serialiser's own
/// spelling — including surrogate pairs for astral characters.
#[test]
fn escape_spellings_decode_and_round_trip() {
    for (escaped, want) in [
        ("\"\\u0041\"", "A"),
        ("\"\\u00e9\"", "\u{e9}"),
        ("\"\u{e9}\"", "\u{e9}"),
        ("\"\u{1f600}\"", "\u{1f600}"),
        ("\"\\ud83d\\ude00\"", "\u{1f600}"),
        ("\"\\uD83D\\uDE00\"", "\u{1f600}"),
        ("\"\\ud800\\udc00\"", "\u{10000}"),
        ("\"\\udbff\\udfff\"", "\u{10ffff}"),
        ("\"\\uffff\"", "\u{ffff}"),
        ("\"\\u0000\"", "\u{0}"),
        ("\"\\u001f\"", "\u{1f}"),
        ("\"\\b\\f\\n\\r\\t\\/\\\\\\\"\"", "\u{8}\u{c}\n\r\t/\\\""),
    ] {
        let v = Json::parse(escaped).unwrap_or_else(|e| panic!("`{escaped}`: {e}"));
        assert_eq!(v, Json::Str(want.to_string()), "`{escaped}`");
        let reprinted = v.to_string();
        assert_eq!(
            Json::parse(&reprinted).unwrap(),
            v,
            "`{escaped}` → `{reprinted}`"
        );
    }
}

#[test]
fn malformed_input_errors_without_panicking() {
    for src in [
        // Lone and mispaired surrogates, in every spelling.
        r#""\ud800""#,
        r#""\udc00""#,
        r#""\ud800\ud800""#,
        r#""\ud800A""#,
        r#""\ud800x""#,
        r#""\ud800\""#,
        r#""\udfff""#,
        // Truncated escapes.
        r#""\u""#,
        r#""\u00""#,
        r#""\u00g0""#,
        r#""\"#,
        r#""\q""#,
        // Raw control characters.
        "\"\u{0}\"",
        "\"\u{1f}\"",
        // Numbers that overflow to ±∞ or never were numbers.
        "1e999",
        "-1e999",
        "1e+",
        "--1",
        "1.2.3",
        "+1",
        // Structural garbage.
        "",
        " ",
        "[",
        "[1,",
        "[1,]",
        "{\"a\"}",
        "{\"a\":1,}",
        "{,}",
        "nul",
        "truefalse",
        "\"unterminated",
        "1 2",
    ] {
        assert!(Json::parse(src).is_err(), "`{src}` should be rejected");
    }
}

#[test]
fn non_finite_numbers_serialise_as_null() {
    // The parser can no longer produce these; hand-built values must
    // still print valid JSON.
    for n in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
        assert_eq!(Json::Num(n).to_string(), "null");
    }
}

/// Mutation fuzz: take well-formed documents, flip characters at random,
/// and require the parser to either succeed or error — never panic, and
/// never accept something its own serialisation cannot round-trip.
#[test]
fn mutation_fuzz_never_panics() {
    let seeds = [
        r#"{"cmd":"open","doc":"m","text":"let x = 1;;\n-- \"quoted\" ;;"}"#,
        r#"[1,2.5,-3,true,false,null,"A😀","\\\"\n"]"#,
        r#"{"a":{"b":[{"c":"𐀀"},[],{}]},"d":-0.125e2}"#,
    ];
    let pool: Vec<char> = "\\\"u{}[]:,d08ceE+-.19 \u{1f}\u{fffd}😀".chars().collect();
    let mut rng = StdRng::seed_from_u64(0xF022);
    for case in 0..cases(4000) {
        let seed = seeds[rng.gen_range(0..seeds.len())];
        let mut chars: Vec<char> = seed.chars().collect();
        for _ in 0..rng.gen_range(1..6) {
            let i = rng.gen_range(0..chars.len());
            match rng.gen_range(0..3) {
                0 => chars[i] = pool[rng.gen_range(0..pool.len())],
                1 => {
                    chars.remove(i);
                }
                _ => chars.insert(i, pool[rng.gen_range(0..pool.len())]),
            }
        }
        let text: String = chars.into_iter().collect();
        if let Ok(v) = Json::parse(&text) {
            let printed = v.to_string();
            let back = Json::parse(&printed).unwrap_or_else(|e| {
                panic!(
                    "case {case}: accepted `{text}` but its serialisation `{printed}` fails: {e}"
                )
            });
            assert_eq!(back, v, "case {case}: `{text}`");
        }
    }
}

/// Byte-level fuzz of the serving loop itself (PR 6 satellites): random
/// lines — valid requests, JSON-shaped garbage, raw binary including
/// invalid UTF-8, and lines far beyond the request cap — must each get
/// exactly one `{"ok":…}` response, with the session intact throughout.
#[test]
fn the_serving_loop_answers_every_line_whatever_the_bytes() {
    use freezeml_service::{serve_with, ServeOptions, Service, ServiceConfig};
    use std::io::Cursor;

    let opts = ServeOptions {
        max_request_bytes: 256,
        ..ServeOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(0x5_E47E_FA22);
    for case in 0..cases(60) {
        let mut script: Vec<u8> = Vec::new();
        let mut expected = 0usize;
        let lines = rng.gen_range(1..20);
        for _ in 0..lines {
            match rng.gen_range(0..8) {
                0 => {
                    script.extend_from_slice(br#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
                    expected += 1;
                }
                1 => {
                    script.extend_from_slice(br#"{"cmd":"type-of","doc":"m","name":"x"}"#);
                    expected += 1;
                }
                6 => {
                    // Introspection commands, bare (valid) — mid-fuzz
                    // the stats snapshot itself must stay one line of
                    // well-formed JSON.
                    script.extend_from_slice(if rng.gen_bool(0.5) {
                        br#"{"cmd":"stats"}"#.as_slice()
                    } else {
                        br#"{"cmd":"metrics"}"#.as_slice()
                    });
                    expected += 1;
                }
                7 => {
                    // Introspection commands with junk fields: answered
                    // with a structured error, line for line.
                    let cmd = if rng.gen_bool(0.5) {
                        "stats"
                    } else {
                        "metrics"
                    };
                    let junk = random_json(&mut rng, 1).to_string();
                    let line = format!(r#"{{"cmd":"{cmd}","junk":{junk}}}"#);
                    if line.len() > 256 {
                        continue;
                    }
                    script.extend_from_slice(line.as_bytes());
                    expected += 1;
                }
                2 => {
                    // JSON-shaped garbage.
                    let s = random_json(&mut rng, 2).to_string();
                    if s.trim().is_empty() {
                        continue;
                    }
                    script.extend_from_slice(s.as_bytes());
                    expected += 1;
                }
                3 => {
                    // Raw binary, newline-free, possibly invalid UTF-8.
                    let n = rng.gen_range(1..64);
                    let bytes: Vec<u8> = (0..n)
                        .map(|_| {
                            let b: u8 = rng.gen_range(0..256u16) as u8;
                            if b == b'\n' {
                                0xFF
                            } else {
                                b
                            }
                        })
                        .collect();
                    if bytes.iter().all(|b| (*b as char).is_whitespace()) {
                        continue;
                    }
                    script.extend_from_slice(&bytes);
                    expected += 1;
                }
                4 => {
                    // Far beyond the cap.
                    script.extend_from_slice(&vec![b'x'; rng.gen_range(300..5000)]);
                    expected += 1;
                }
                _ => {} // blank line: no response
            }
            script.push(b'\n');
        }
        let mut svc = Service::new(ServiceConfig::default());
        let mut out = Vec::new();
        serve_with(&mut svc, Cursor::new(&script), &mut out, &opts)
            .expect("transport over buffers cannot fail");
        let responses: Vec<&str> = std::str::from_utf8(&out)
            .expect("responses are always valid UTF-8")
            .lines()
            .collect();
        assert_eq!(responses.len(), expected, "case {case}");
        for r in responses {
            let v = Json::parse(r).unwrap_or_else(|e| panic!("case {case}: `{r}`: {e}"));
            assert!(
                v.get("ok").is_some() || matches!(v, Json::Arr(_)),
                "case {case}: response `{r}` has no verdict"
            );
        }
    }
}
