//! The persisted-warm ≡ from-scratch property: a service warmed from an
//! on-disk snapshot produces exactly the verdicts a cold check of the
//! same text produces — through any number of save / restart / load
//! cycles, interleaved with edits, under every engine selection
//! (`Both` makes each comparison simultaneously a cross-engine
//! differential run). Plus the robustness half of the contract: a
//! cache file that is truncated, bit-flipped, or written by a different
//! configuration must never panic, never wedge the service, and —
//! above all — never change a single verdict; the only acceptable
//! degradation is a cold start.

use freezeml_core::Options;
use freezeml_service::{
    persist, CheckReport, EngineSel, GenProgram, PersistConfig, Service, ServiceConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

fn cfg(engine: EngineSel) -> ServiceConfig {
    ServiceConfig {
        opts: Options::default(),
        engine,
        workers: 2,
    }
}

/// A per-test scratch directory (removed on drop).
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir =
            std::env::temp_dir().join(format!("freezeml-persistence-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }

    fn cache(&self) -> PersistConfig {
        PersistConfig::new(&self.0)
    }

    fn file(&self) -> PathBuf {
        self.cache().file()
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Render a report to its comparable essence: binding names plus
/// canonical verdicts (scheme text / error class / blocker).
fn essence(r: &CheckReport) -> Vec<(String, String)> {
    r.bindings
        .iter()
        .map(|b| {
            let v = match &b.outcome {
                freezeml_service::Outcome::Typed {
                    scheme, defaulted, ..
                } => format!("ok {scheme} [{}]", defaulted.len()),
                freezeml_service::Outcome::Error { class, .. } => format!("err {class}"),
                freezeml_service::Outcome::Blocked { on } => format!("blocked {on}"),
                freezeml_service::Outcome::Disagreement { core, uf } => {
                    panic!("engine disagreement on `{}`: {core} / {uf}", b.name)
                }
            };
            (b.name.clone(), v)
        })
        .collect()
}

/// The essence of a cold, cache-less check of `text`.
fn scratch(engine: EngineSel, text: &str) -> Vec<(String, String)> {
    essence(Service::new(cfg(engine)).open("doc", text).unwrap())
}

/// "Restart the process": a service over a brand-new hub, warmed only
/// by whatever the cache directory holds.
fn restarted(engine: EngineSel, dir: &TmpDir) -> (Service, persist::LoadOutcome) {
    let mut svc = Service::new(cfg(engine));
    let out = svc.attach_cache(dir.cache());
    (svc, out)
}

/// The Figure 1 rows usable as top-level bindings: standard mode, no
/// extra environment.
fn figure1_program() -> String {
    let bodies: Vec<&str> = freezeml_corpus::EXAMPLES
        .iter()
        .filter(|e| e.mode == freezeml_corpus::Mode::Standard && e.extra_env.is_empty())
        .map(|e| e.src)
        .collect();
    assert!(bodies.len() >= 40, "most Figure 1 rows qualify");
    let mut text = String::from("#use prelude\n");
    for (i, body) in bodies.iter().enumerate() {
        text.push_str(&format!("let fig{i} = {body};;\n"));
    }
    text.push_str("let tail_id = $(fun x -> x);;\n");
    text.push_str("let tail_use = poly ~tail_id;;\n");
    text
}

#[test]
fn persisted_warm_equals_scratch_across_engines_and_restarts() {
    // The corpus mixes well-typed and ill-typed rows, so error
    // outcomes round-trip through the snapshot too.
    let fig1 = figure1_program();
    for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
        let dir = TmpDir::new(&format!("diff-{engine:?}"));
        let cold = scratch(engine, &fig1);

        // Cycle 1: check cold with the cache attached, snapshot.
        let (mut svc, out) = restarted(engine, &dir);
        assert!(!out.loaded, "no snapshot yet");
        assert_eq!(essence(svc.open("doc", &fig1).unwrap()), cold);
        svc.save_cache().unwrap().unwrap();
        drop(svc);

        // Cycle 2: restart, verify the warm verdicts, edit (a generated
        // program opens alongside), snapshot again.
        let (mut svc, out) = restarted(engine, &dir);
        assert!(out.loaded, "snapshot must load: {:?}", out.warning);
        let warm = svc.open("doc", &fig1).unwrap();
        assert_eq!(
            warm.rechecked, 0,
            "fully persisted program rechecks nothing"
        );
        assert_eq!(essence(warm), cold);
        let gen = GenProgram::generate(36, 0xD1FF);
        assert_eq!(
            essence(svc.open("gen", &gen.text()).unwrap()),
            scratch(engine, &gen.text())
        );
        svc.save_cache().unwrap().unwrap();
        drop(svc);

        // Cycle 3: restart again; replay an edit trace over the
        // restored cache, comparing every step to from-scratch.
        let (mut svc, out) = restarted(engine, &dir);
        assert!(out.loaded);
        svc.open("gen", &gen.text()).unwrap();
        for (round, i) in [(1u64, 7usize), (2, 18), (3, 35)] {
            let edited = gen.with_edit(i, round * 1000 + 17).text();
            assert_eq!(
                essence(svc.edit("gen", &edited).unwrap()),
                scratch(engine, &edited),
                "edit trace diverged (engine {:?}, round {round})",
                engine
            );
            assert_eq!(
                essence(svc.edit("gen", &gen.text()).unwrap()),
                scratch(engine, &gen.text()),
                "restore diverged (engine {:?}, round {round})",
                engine
            );
        }
    }
}

#[test]
fn a_persisted_warm_start_schedules_no_work_at_all() {
    let gen = GenProgram::generate(64, 0x5EED);
    let text = gen.text();
    let dir = TmpDir::new("wavefree");
    let (mut svc, _) = restarted(EngineSel::Uf, &dir);
    svc.open("doc", &text).unwrap();
    svc.save_cache().unwrap().unwrap();
    drop(svc);

    let (mut svc, out) = restarted(EngineSel::Uf, &dir);
    assert!(out.loaded);
    assert!(out.nodes > 0, "the scheme DAG travelled");
    let report = svc.open("doc", &text).unwrap();
    assert_eq!(report.rechecked, 0);
    assert_eq!(report.waves, 0, "no scheduling on a persisted warm start");
    assert_eq!(report.reused, 64);
    assert_eq!(
        svc.scheme_renders(),
        0,
        "persisted render table serves every scheme string; the bank \
         materialises nothing"
    );

    // And the first edit after a restart lands on the warm cache: only
    // the dirty cone is rechecked.
    let edited = gen.with_edit(32, 99).text();
    let report = svc.edit("doc", &edited).unwrap();
    assert!(report.rechecked > 0, "the edit dirties its cone");
    assert!(
        report.rechecked < 64,
        "a restored cache keeps the clean cone warm (rechecked {})",
        report.rechecked
    );
}

#[test]
fn corrupt_caches_never_panic_and_never_change_verdicts() {
    let text = figure1_program();
    let cold = scratch(EngineSel::Uf, &text);
    let dir = TmpDir::new("fuzz");
    let (mut svc, _) = restarted(EngineSel::Uf, &dir);
    svc.open("doc", &text).unwrap();
    svc.save_cache().unwrap().unwrap();
    drop(svc);
    let pristine = std::fs::read(dir.file()).unwrap();

    // Every truncation boundary class: empty, mid-header, exact header,
    // mid-payload, one byte short.
    let cuts = [0, 1, 17, 39, 40, pristine.len() / 2, pristine.len() - 1];
    for &cut in &cuts {
        std::fs::write(dir.file(), &pristine[..cut]).unwrap();
        let (mut svc, out) = restarted(EngineSel::Uf, &dir);
        assert!(!out.loaded, "truncation at {cut} must not load");
        assert!(out.warning.is_some(), "truncation at {cut} warns");
        assert_eq!(essence(svc.open("doc", &text).unwrap()), cold);
    }

    // Random bit flips (deterministic SplitMix64 stream): whatever the
    // byte, the load either rejects the file or — if the flip landed in
    // the ignored tail of a section it never decodes — restores only
    // checksum-validated state. Either way the verdicts must be the
    // cold ones.
    let mut state = 0xF1A5_C0DE_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..48u32 {
        let mut bytes = pristine.clone();
        let at = (next() as usize) % bytes.len();
        let bit = 1u8 << (next() % 8);
        bytes[at] ^= bit;
        std::fs::write(dir.file(), &bytes).unwrap();
        let (mut svc, out) = restarted(EngineSel::Uf, &dir);
        if at >= 40 {
            // A payload flip is always caught by the checksum.
            assert!(!out.loaded, "round {round}: payload flip at {at} loaded");
        }
        assert_eq!(
            essence(svc.open("doc", &text).unwrap()),
            cold,
            "round {round}: flip at byte {at} changed a verdict"
        );
    }
}

#[test]
fn a_snapshot_from_another_configuration_is_a_cold_start() {
    let text = "#use prelude\nlet r = ref [];;\n";
    let dir = TmpDir::new("epoch");
    let (mut svc, _) = restarted(EngineSel::Uf, &dir);
    svc.open("doc", text).unwrap();
    svc.save_cache().unwrap().unwrap();
    drop(svc);

    // Same directory, different option fingerprint (`--pure` toggles
    // the value restriction — under which `r`'s verdict differs, which
    // is exactly why the epoch must fence it off).
    let mut pure = cfg(EngineSel::Uf);
    pure.opts.value_restriction = false;
    let mut svc = Service::new(pure);
    let out = svc.attach_cache(dir.cache());
    assert!(!out.loaded, "foreign epoch must not load");
    let warning = out.warning.expect("a structured warning names the cause");
    assert!(warning.contains("epoch"), "unhelpful warning: {warning}");
    let report = svc.open("doc", text).unwrap();
    assert_eq!(report.rechecked, 1, "cold start under the new options");
}

#[test]
fn the_size_cap_evicts_oldest_generations_first_and_reloads_clean() {
    let dir = TmpDir::new("cap");
    let mut pcfg = dir.cache();
    pcfg.max_bytes = 4096;
    let (mut svc, _) = restarted(EngineSel::Uf, &dir);
    svc.attach_cache(pcfg.clone());
    // Generations advance save to save; later programs are younger.
    let old = GenProgram::generate(40, 1).text();
    svc.open("old", &old).unwrap();
    svc.save_cache().unwrap().unwrap();
    let young = GenProgram::generate(40, 2).text();
    svc.open("young", &young).unwrap();
    let saved = svc.save_cache().unwrap().unwrap();
    assert!(
        saved.evicted > 0,
        "4 KiB cannot hold two 40-binding programs"
    );
    assert!(
        saved.bytes <= 4096,
        "snapshot respects the cap: {}",
        saved.bytes
    );
    // The hub counter is cumulative across saves (the first snapshot
    // may already have evicted); it must account for at least this one.
    assert!(
        svc.evictions() >= saved.evicted,
        "surfaced in service stats"
    );
    drop(svc);

    // The shrunken snapshot still loads, still agrees with scratch,
    // and kept the young program warmer than the old one.
    let (mut svc, out) = restarted(EngineSel::Uf, &dir);
    assert!(out.loaded, "an evicted snapshot is still a valid snapshot");
    let young_report = svc.open("young", &young).unwrap();
    let young_rechecked = young_report.rechecked;
    assert_eq!(essence(young_report), scratch(EngineSel::Uf, &young));
    let old_report = svc.open("old", &old).unwrap();
    assert!(
        young_rechecked <= old_report.rechecked,
        "eviction favours the young generation ({} vs {})",
        young_rechecked,
        old_report.rechecked
    );
    assert_eq!(essence(old_report), scratch(EngineSel::Uf, &old));
}

#[test]
fn one_snapshot_serves_every_engine_selection() {
    // Engine selection lives in the cache keys, not the epoch: a
    // snapshot written under `both` warms `core` and `uf` sessions.
    let text = figure1_program();
    let dir = TmpDir::new("engines");
    let (mut svc, _) = restarted(EngineSel::Both, &dir);
    svc.open("doc", &text).unwrap();
    svc.save_cache().unwrap().unwrap();
    drop(svc);

    for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
        let (mut svc, out) = restarted(engine, &dir);
        assert!(out.loaded);
        let report = svc.open("doc", &text).unwrap();
        assert_eq!(essence(report), scratch(engine, &text));
        if engine == EngineSel::Both {
            assert_eq!(report.rechecked, 0, "the writing engine restarts warm");
        }
    }
}

#[test]
fn checkpoints_survive_an_unclean_shutdown() {
    // The serve path's crash story: periodic checkpoints mean a killed
    // process loses at most one interval. Simulate by *not* calling
    // save_cache — only the checkpointer writes.
    let text = GenProgram::generate(24, 9).text();
    let dir = TmpDir::new("crash");
    let shared = Arc::new(freezeml_service::Shared::new());
    let epoch = persist::epoch(&Options::default());
    let cp = persist::Checkpointer::checkpoint_every(
        Arc::clone(&shared),
        epoch,
        dir.cache(),
        std::time::Duration::from_millis(25),
    );
    let mut svc = Service::with_shared(cfg(EngineSel::Uf), Arc::clone(&shared));
    svc.open("doc", &text).unwrap();
    // Wait for at least one periodic checkpoint to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !dir.file().exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "checkpointer never wrote"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    drop(cp); // the "kill": stop without a final save
    drop(svc);

    let (mut svc, out) = restarted(EngineSel::Uf, &dir);
    assert!(out.loaded, "periodic checkpoint survives the crash");
    let report = svc.open("doc", &text).unwrap();
    assert_eq!(report.rechecked, 0);
    assert_eq!(essence(report), scratch(EngineSel::Uf, &text));
}
