//! Acceptance checks for the incremental service on a ≥100-binding
//! generated program:
//!
//! * a warm single-binding edit re-infers **only** the dirty binding and
//!   its transitive dependents — asserted exactly via the recheck
//!   counters against the analysis' dependent set;
//! * the warm edit is dramatically faster than the cold check. The
//!   normative ≥10× figure is measured by the release-profile
//!   `service_throughput` bench (recorded in `EXPERIMENTS.md`: 11–12×
//!   at 120–480 bindings); this debug-profile test guards a ≥6× floor —
//!   debug constant factors compress the ratio (≈10× observed), and a
//!   regression below 6× would mean the incremental path broke.

use freezeml_core::Options;
use freezeml_service::{analyze, EngineSel, GenProgram, Service, ServiceConfig};
use std::time::Instant;

const N: usize = 120;
const SEED: u64 = 0xACCE;

fn svc() -> Service {
    Service::new(ServiceConfig {
        opts: Options::default(),
        engine: EngineSel::Uf,
        workers: 2,
    })
}

#[test]
fn warm_edit_reinfers_exactly_the_dirty_cone() {
    let gen = GenProgram::generate(N, SEED);
    let mut s = svc();
    let cold = s.open("t", &gen.text()).unwrap();
    assert!(cold.all_typed());
    assert_eq!(cold.rechecked, N, "cold check infers every binding");

    for (i, salt) in [(0usize, 1u64), (N / 2, 2), (N - 1, 3), (17, 4)] {
        let edited = gen.with_edit(i, salt);
        let analysis = analyze(&edited.text(), &Options::default(), EngineSel::Uf).unwrap();
        // The dirty cone: the edited binding plus its transitive
        // dependents — but dependents whose own dependency on `i` was
        // severed by the edit (the replacement body drops references)
        // may also change key, so the exact expectation comes from the
        // key diff, not just the new graph.
        let before = analyze(&gen.text(), &Options::default(), EngineSel::Uf).unwrap();
        let dirty: Vec<usize> = (0..N)
            .filter(|&j| before.keys[j] != analysis.keys[j])
            .collect();
        // Sanity: the dirty set is the edited binding + its (old or new)
        // dependent cone, and is small.
        assert!(dirty.contains(&i));
        let mut cone = before.dependents(i);
        cone.extend(analysis.dependents(i));
        cone.push(i);
        cone.sort_unstable();
        cone.dedup();
        assert_eq!(dirty, cone, "key diff = dependency cone of binding {i}");
        assert!(
            dirty.len() < N / 4,
            "generated programs must stay sparse (cone of {i} is {})",
            dirty.len()
        );

        let warm = s.edit("t", &edited.text()).unwrap();
        assert_eq!(
            warm.rechecked,
            dirty.len(),
            "edit of binding {i}: re-infer exactly the dirty cone"
        );
        assert_eq!(warm.reused, N - dirty.len());
        assert!(warm.all_typed());

        // Restore (also warm: the original keys are all still cached).
        let restored = s.edit("t", &gen.text()).unwrap();
        assert_eq!(restored.rechecked, 0);
    }
}

#[test]
fn warm_edit_is_dramatically_faster_than_cold() {
    let gen = GenProgram::generate(N, SEED);
    let text = gen.text();

    // Cold: a fresh service each round.
    let rounds = 5;
    let cold = (0..rounds)
        .map(|_| {
            let mut s = svc();
            let t = Instant::now();
            let r = s.open("t", &text).unwrap();
            assert_eq!(r.rechecked, N);
            t.elapsed()
        })
        .min()
        .expect("rounds > 0");

    // Warm: one service, a genuine single-binding edit per round.
    let mut s = svc();
    s.open("t", &text).unwrap();
    let warm = (0..rounds)
        .map(|round| {
            let next = gen.with_edit(N / 2, 100 + round).text();
            let t = Instant::now();
            let r = s.edit("t", &next).unwrap();
            let dt = t.elapsed();
            assert!(r.rechecked > 0 && r.rechecked < N / 4);
            dt
        })
        .min()
        .expect("rounds > 0");

    assert!(
        warm * 6 <= cold,
        "warm edit ({warm:?}) must stay well under the cold check ({cold:?}); \
         the release bench holds the ≥10× line"
    );
}

#[test]
fn parallel_and_serial_pools_agree_on_reports() {
    let text = GenProgram::generate(60, 0xBEEF).text();
    let mut one = Service::new(ServiceConfig {
        opts: Options::default(),
        engine: EngineSel::Uf,
        workers: 1,
    });
    let mut four = Service::new(ServiceConfig {
        opts: Options::default(),
        engine: EngineSel::Uf,
        workers: 4,
    });
    let a = one.open("t", &text).unwrap().clone();
    let b = four.open("t", &text).unwrap().clone();
    assert_eq!(a.bindings.len(), b.bindings.len());
    for (x, y) in a.bindings.iter().zip(&b.bindings) {
        assert_eq!(x.name, y.name);
        assert_eq!(
            x.outcome.display(),
            y.outcome.display(),
            "worker-count must not affect verdicts ({})",
            x.name
        );
    }
    assert_eq!(a.rechecked, b.rechecked);
}
