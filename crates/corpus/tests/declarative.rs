//! Declarative cross-validation of Figure 1: every reported type is
//! *derivable* in the declarative system of Figure 7 (decided via the
//! Appendix C stratification), independently of how the inference harness
//! compares results. This closes the loop between the algorithmic and
//! declarative presentations on the paper's own corpus.

use freezeml_core::{check_typing, parse_term, parse_type, KindEnv};
use freezeml_corpus::{runner, Expected, Mode, EXAMPLES};

#[test]
fn every_reported_type_is_declaratively_derivable() {
    for e in EXAMPLES {
        if e.mode != Mode::Standard {
            continue;
        }
        let Expected::Type(want) = e.expected else {
            continue;
        };
        let env = runner::env_for(e);
        let opts = runner::options_for(e);
        let term = parse_term(e.src).unwrap();
        let ty = parse_type(want).unwrap();
        // Free variables of the reported type act as rigid eigenvariables.
        let delta: KindEnv = ty.ftv().into_iter().collect();
        assert!(
            check_typing(&delta, &env, &term, &ty, &opts).unwrap(),
            "{}: reported type {want} is not derivable",
            e.id
        );
    }
}

#[test]
fn ill_typed_rows_have_no_derivation_at_plausible_types() {
    // For the ✕ rows, even generous candidate types are not derivable.
    let candidates = [
        "Int",
        "a",
        "a -> a",
        "forall a. a -> a",
        "(forall a. a -> a) -> forall a. a -> a",
    ];
    for e in EXAMPLES {
        if e.expected != Expected::Ill || e.mode != Mode::Standard {
            continue;
        }
        let env = runner::env_for(e);
        let opts = runner::options_for(e);
        let term = parse_term(e.src).unwrap();
        for cand in candidates {
            let ty = parse_type(cand).unwrap();
            let delta: KindEnv = ty.ftv().into_iter().collect();
            assert!(
                !check_typing(&delta, &env, &term, &ty, &opts).unwrap(),
                "{}: ✕ row unexpectedly derivable at {cand}",
                e.id
            );
        }
    }
}

#[test]
fn reported_types_are_principal_among_candidates() {
    // For a few rows with interesting free variables, the ground instance
    // is derivable (principality downwards) but a *more general* made-up
    // type is not (the reported type is a ceiling).
    let cases = [
        // (id, ground instance, over-general candidate)
        (
            "A2",
            "(Int -> Int) -> Int -> Int",
            "forall a. (a -> a) -> a -> a",
        ),
        ("C4", "List (Bool -> Bool)", "forall a. List (a -> a)"),
        (
            "A4",
            "(forall a. a -> a) -> Int -> Int",
            "(forall a. a -> a) -> forall b. b -> b",
        ),
    ];
    for (id, ground, over) in cases {
        let e = freezeml_corpus::figure1::by_id(id).unwrap();
        let env = runner::env_for(e);
        let opts = runner::options_for(e);
        let term = parse_term(e.src).unwrap();
        let g = parse_type(ground).unwrap();
        let delta: KindEnv = g.ftv().into_iter().collect();
        assert!(
            check_typing(&delta, &env, &term, &g, &opts).unwrap(),
            "{id}: ground instance {ground} should be derivable"
        );
        let o = parse_type(over).unwrap();
        let delta2: KindEnv = o.ftv().into_iter().collect();
        assert!(
            !check_typing(&delta2, &env, &term, &o, &opts).unwrap(),
            "{id}: over-general {over} should NOT be derivable"
        );
    }
}
