//! Property (PR 4 satellite): the symbol-interned front end is
//! observationally identical to the string-based pipeline it replaced.
//!
//! Names now travel as `Symbol(u32)` indices from the lexer onwards;
//! the only way a user could tell is through printed output. So: on the
//! whole Figure 1 corpus (terms and expected types), parse → pretty
//! must be a *fixed point byte-for-byte* — pretty(parse(pretty(t))) ==
//! pretty(t) — and interning must be loss-free (a symbol prints exactly
//! the identifier that was lexed).

use freezeml_core::{parse_term, parse_type, Symbol};
use freezeml_corpus::{Expected, EXAMPLES};

#[test]
fn corpus_terms_pretty_parse_round_trip_byte_identically() {
    let mut round_tripped = 0;
    for e in EXAMPLES {
        let term = parse_term(e.src).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        // `$M` and `M@` desugar through globally fresh `$n` variables,
        // which are unparseable by construction (that is the
        // capture-freedom guarantee) and differ between parses; the
        // byte-identity property applies to the sugar-free rows.
        if e.src.contains('$') || e.src.contains('@') {
            continue;
        }
        // Parsing is deterministic through the symbol table: a second
        // parse is structurally equal and prints the same bytes.
        let again = parse_term(e.src).unwrap();
        assert_eq!(term, again, "{}: deterministic parse", e.id);
        let printed = term.to_string();
        assert_eq!(printed, again.to_string(), "{}: deterministic print", e.id);
        let reparsed =
            parse_term(&printed).unwrap_or_else(|err| panic!("{}: `{printed}`: {err}", e.id));
        assert_eq!(term, reparsed, "{}: structural round trip", e.id);
        assert_eq!(
            printed,
            reparsed.to_string(),
            "{}: pretty is a fixed point",
            e.id
        );
        round_tripped += 1;
    }
    assert!(round_tripped > 25, "only {round_tripped} sugar-free rows");
}

#[test]
fn corpus_types_pretty_parse_round_trip_byte_identically() {
    let mut seen = 0;
    for e in EXAMPLES {
        let Expected::Type(want) = e.expected else {
            continue;
        };
        seen += 1;
        let ty = parse_type(want).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        let printed = ty.to_string();
        let reparsed =
            parse_type(&printed).unwrap_or_else(|err| panic!("{}: `{printed}`: {err}", e.id));
        assert_eq!(
            printed,
            reparsed.to_string(),
            "{}: type pretty is a fixed point",
            e.id
        );
        assert!(ty.alpha_eq(&reparsed), "{}", e.id);
    }
    assert!(seen > 30, "corpus should contribute many typed rows");
    // Environment signatures round-trip too (they exercise ST, List,
    // products, and nested quantifiers).
    for e in EXAMPLES {
        for (name, sig) in e.extra_env {
            let ty = parse_type(sig).unwrap();
            assert_eq!(
                ty.to_string(),
                parse_type(&ty.to_string()).unwrap().to_string()
            );
            assert_eq!(Symbol::intern(name).as_str(), *name);
        }
    }
}

#[test]
fn interned_identifiers_print_losslessly() {
    // Every identifier shape the lexer accepts, including primes and
    // underscores, survives interning byte-for-byte.
    for name in ["x", "auto'", "pair'", "_under", "camelCase", "x0", "s1'"] {
        assert_eq!(Symbol::intern(name).as_str(), name);
        let t = parse_term(&format!("fun {name} -> {name}")).unwrap();
        assert_eq!(t.to_string(), format!("fun {name} -> {name}"));
    }
}
