//! The Figure 2 prelude: type signatures for the functions used throughout
//! the paper's examples (adapted from Serrano et al. 2018).
//!
//! `[]` is named `nil`, `(::)` is `cons`, and `(++)` is `append` — the
//! surface parser desugars the list/operator syntax to these names. `plus`
//! (used by the §2/§3.2 `bad` examples, written infix `+`), and `fst`/`snd`
//! are small additions beyond Figure 2, noted in `DESIGN.md`.

use freezeml_core::TypeEnv;

/// Alias used by the Table 1 harness.
pub type TypeEnvAlias = TypeEnv;

/// Every Figure 2 signature: `(name, type)` in the surface syntax.
pub const FIGURE2_SIGNATURES: &[(&str, &str)] = &[
    ("head", "forall a. List a -> a"),
    ("tail", "forall a. List a -> List a"),
    ("nil", "forall a. List a"),
    ("cons", "forall a. a -> List a -> List a"),
    ("single", "forall a. a -> List a"),
    ("append", "forall a. List a -> List a -> List a"),
    ("length", "forall a. List a -> Int"),
    ("id", "forall a. a -> a"),
    ("ids", "List (forall a. a -> a)"),
    ("inc", "Int -> Int"),
    ("choose", "forall a. a -> a -> a"),
    ("poly", "(forall a. a -> a) -> Int * Bool"),
    ("auto", "(forall a. a -> a) -> forall a. a -> a"),
    ("auto'", "forall b. (forall a. a -> a) -> b -> b"),
    ("map", "forall a b. (a -> b) -> List a -> List b"),
    ("app", "forall a b. (a -> b) -> a -> b"),
    ("revapp", "forall a b. a -> (a -> b) -> b"),
    ("runST", "forall a. (forall s. ST s a) -> a"),
    ("argST", "forall s. ST s Int"),
    ("pair", "forall a b. a -> b -> a * b"),
    ("pair'", "forall b a. a -> b -> a * b"),
    // Additions beyond Figure 2 (see module docs):
    ("plus", "Int -> Int -> Int"),
    ("fst", "forall a b. a * b -> a"),
    ("snd", "forall a b. a * b -> b"),
];

/// Build the Figure 2 prelude environment.
///
/// # Panics
///
/// Never — the signatures are static and parse-checked by tests.
pub fn figure2() -> TypeEnv {
    let mut env = TypeEnv::new();
    for (name, ty) in FIGURE2_SIGNATURES {
        env.push_str(name, ty)
            .unwrap_or_else(|e| panic!("bad prelude signature {name}: {e}"));
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::{KindEnv, RefinedEnv};

    #[test]
    fn all_signatures_parse_and_kind() {
        let env = figure2();
        assert_eq!(env.len(), FIGURE2_SIGNATURES.len());
        // Every prelude type must be closed and well-kinded.
        freezeml_core::kinding::check_env(&KindEnv::new(), &RefinedEnv::new(), &env).unwrap();
    }

    #[test]
    fn signature_types_round_trip() {
        let env = figure2();
        for (name, src) in FIGURE2_SIGNATURES {
            let ty = env
                .lookup(&freezeml_core::Var::named(name))
                .unwrap_or_else(|| panic!("{name} missing"));
            let reparsed = freezeml_core::parse_type(&ty.to_string()).unwrap();
            assert!(ty.alpha_eq(&reparsed), "{name}: {src}");
        }
    }

    #[test]
    fn prelude_types_are_closed() {
        let env = figure2();
        for (name, ty) in env.iter() {
            assert!(ty.ftv().is_empty(), "{name} has free type variables");
        }
    }
}
