//! Run Figure 1 examples through the real checker and compare against the
//! paper's expectations.

use crate::figure1::{Example, Expected, Mode, EXAMPLES};
use crate::prelude::figure2;
use freezeml_core::{infer_program, Options, ProgramError, Type, TypeEnv};

/// The outcome of checking one example.
#[derive(Clone, Debug)]
pub struct ExampleResult {
    /// The example's paper id.
    pub id: &'static str,
    /// What inference produced.
    pub inferred: Result<Type, ProgramError>,
    /// What the paper reports.
    pub expected: Expected,
    /// Did we reproduce the paper's row?
    pub pass: bool,
}

impl ExampleResult {
    /// Render the inferred side like Figure 1 renders it (`✕` for errors).
    pub fn inferred_display(&self) -> String {
        match &self.inferred {
            Ok(t) => t.to_string(),
            Err(_) => "✕".to_string(),
        }
    }
}

/// The environment an example runs in: Figure 2 plus its `where` clauses.
pub fn env_for(example: &Example) -> TypeEnv {
    let mut env = figure2();
    for (name, ty) in example.extra_env {
        env.push_str(name, ty)
            .unwrap_or_else(|e| panic!("bad extra signature {name}: {e}"));
    }
    env
}

/// The checker options an example needs.
pub fn options_for(example: &Example) -> Options {
    match example.mode {
        Mode::Standard => Options::default(),
        Mode::Pure => Options::pure_freezeml(),
    }
}

/// Check one example against its expected outcome.
pub fn run_example(example: &Example) -> ExampleResult {
    let env = env_for(example);
    let opts = options_for(example);
    let inferred = infer_program(&env, example.src, &opts);
    let pass = match (&inferred, &example.expected) {
        (Ok(t), Expected::Type(want)) => {
            let want = freezeml_core::parse_type(want).expect("expected type parses");
            t.alpha_eq(&want)
        }
        (Err(_), Expected::Ill) => true,
        _ => false,
    };
    ExampleResult {
        id: example.id,
        inferred,
        expected: example.expected,
        pass,
    }
}

/// Check the whole corpus, in paper order.
pub fn run_all() -> Vec<ExampleResult> {
    EXAMPLES.iter().map(run_example).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline reproduction: every row of Figure 1.
    #[test]
    fn figure1_reproduces() {
        let mut failures = Vec::new();
        for r in run_all() {
            if !r.pass {
                failures.push(format!(
                    "{}: expected {:?}, inferred {}",
                    r.id,
                    r.expected,
                    r.inferred_display()
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "Figure 1 mismatches:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn ill_typed_examples_fail_for_type_reasons() {
        for e in EXAMPLES {
            if e.expected == Expected::Ill {
                let r = run_example(e);
                match r.inferred {
                    Err(ProgramError::Type(_)) => {}
                    other => panic!("{}: expected a type error, got {other:?}", e.id),
                }
            }
        }
    }

    #[test]
    fn f10_fails_under_the_value_restriction() {
        // F10† is marked †: it must NOT typecheck in the standard system.
        let e = crate::figure1::by_id("F10†").unwrap();
        let env = env_for(e);
        assert!(infer_program(&env, e.src, &Options::default()).is_err());
    }

    #[test]
    fn starred_examples_need_their_operators() {
        // A10⋆: poly id (without the freeze) must fail.
        let env = figure2();
        assert!(infer_program(&env, "poly id", &Options::default()).is_err());
        // C5⋆: id :: ids (without the freeze) must fail.
        assert!(infer_program(&env, "id :: ids", &Options::default()).is_err());
        // F7⋆: head ids 3 (without the @) must fail.
        assert!(infer_program(&env, "(head ids) 3", &Options::default()).is_err());
        // D3⋆: runST argST (without the freeze) must fail.
        assert!(infer_program(&env, "runST argST", &Options::default()).is_err());
    }
}
