//! # The FreezeML evaluation corpus (paper Figures 1 and 2, Table 1)
//!
//! The paper's evaluation is a corpus of 49 example programs (Figure 1,
//! sections A–F, most originally from Serrano et al.'s *Guarded
//! Impredicative Polymorphism*) typed against a prelude of 21 signatures
//! (Figure 2). This crate encodes:
//!
//! * [`prelude::figure2`] — the prelude as a [`freezeml_core::TypeEnv`];
//! * [`figure1::EXAMPLES`] — every row of Figure 1 with its source text
//!   (in the ASCII surface syntax) and expected type or expected failure;
//! * [`runner`] — run any subset through the real checker and compare;
//! * [`table1`] — the Appendix A comparison: the FreezeML and plain-ML
//!   rows computed by running the real checkers, the other systems'
//!   counts recorded from the paper (see `DESIGN.md` for the
//!   substitution rationale).
//!
//! ```
//! use freezeml_corpus::{figure1, runner};
//! let results = runner::run_all();
//! assert_eq!(results.len(), figure1::EXAMPLES.len());
//! assert!(results.iter().all(|r| r.pass), "Figure 1 must reproduce");
//! ```

pub mod figure1;
pub mod prelude;
pub mod runner;
pub mod table1;

pub use figure1::{Example, Expected, Mode, EXAMPLES};
pub use prelude::figure2;
pub use runner::{run_all, run_example, ExampleResult};
