//! Table 1 (Appendix A): how many of the 32 examples from sections A–E
//! each system *fails* to handle, under three annotation budgets.
//!
//! | Annotate | MLF | HML | FreezeML | FPH | GI | HMF |
//! |----------|-----|-----|----------|-----|----|-----|
//! | Nothing  |  2  |  3  |    4     |  6  | 8  | 11  |
//! | Binders  |  1  |  2  |    2     |  4  | 6  |  6  |
//! | Terms    |  1  |  2  |    2     |  4  | 2  |  6  |
//!
//! The **FreezeML row is computed** by running the real checker: at budget
//! `Nothing` an example may use freezes/`$`/`@` but no type annotations
//! (so B1 and B2 run in their unannotated forms); at `Binders`/`Terms` the
//! Figure 1 forms are allowed. FreezeML has no term-level annotation form
//! beyond binders and `let`s, so its `Terms` row equals its `Binders` row
//! — as in the paper.
//!
//! A **plain-ML row is also computed** (our Algorithm W baseline): ML
//! accepts only examples that avoid first-class polymorphism entirely.
//!
//! The other five systems are paper-scale artefacts of their own; their
//! counts are **recorded from the paper's Table 1** (including the
//! footnote-3 Rémy correction for HML on E3). See `DESIGN.md`.

use crate::figure1::{Expected, Mode, EXAMPLES};
use crate::runner::{env_for, options_for};
use freezeml_core::infer_program;
use freezeml_miniml::{ml_accepts_src, MlOutcome};

/// Annotation budgets, in increasing permissiveness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// No type annotations at all (freeze/`$`/`@` allowed).
    Nothing,
    /// Type annotations on binders only.
    Binders,
    /// Type annotations on arbitrary terms.
    Terms,
}

/// All three budgets in paper order.
pub const BUDGETS: [Budget; 3] = [Budget::Nothing, Budget::Binders, Budget::Terms];

/// A row of Table 1: per-budget failure counts for one system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemRow {
    /// System name.
    pub system: &'static str,
    /// Failures at `Nothing`/`Binders`/`Terms`.
    pub failures: [usize; 3],
    /// Whether the row was computed by running a checker (`true`) or
    /// recorded from the paper (`false`).
    pub computed: bool,
}

/// Examples whose *statement* in Serrano et al. already carries the
/// annotation (`A4 = λ(x : ∀a.a→a). x x`): the annotation is part of the
/// problem, not charged against the budget. By contrast B1/B2 are stated
/// unannotated — inferring the polymorphic argument is their challenge —
/// so their Figure 1 annotations *do* count.
const STATED_WITH_ANNOTATION: &[&str] = &["A4"];

/// The variants of a base example admissible at a budget.
fn variants_for(base: &str, budget: Budget) -> Vec<&'static crate::figure1::Example> {
    EXAMPLES
        .iter()
        .filter(|e| e.section != 'F' && e.base == base && e.mode == Mode::Standard)
        .filter(|e| match budget {
            Budget::Nothing => !e.has_type_annotation || STATED_WITH_ANNOTATION.contains(&e.base),
            Budget::Binders | Budget::Terms => true,
        })
        .collect()
}

/// The unannotated forms of B1 and B2, used at budget `Nothing` (their
/// Figure 1 forms are annotated; the annotation is what Table 1 charges
/// them for).
const UNANNOTATED_FORMS: &[(&str, &str)] = &[
    ("B1", "fun f -> (f 1, f true)"),
    ("B2", "fun xs -> poly (head xs)"),
];

/// The 32 base ids of sections A–E, in paper order.
pub fn base_ids() -> Vec<&'static str> {
    let mut out = Vec::new();
    for e in EXAMPLES.iter().filter(|e| e.section != 'F') {
        if !out.contains(&e.base) {
            out.push(e.base);
        }
    }
    out
}

/// Does FreezeML handle `base` at the given budget? Computed by running the
/// checker on every admissible variant.
pub fn freezeml_handles(base: &str, budget: Budget) -> bool {
    for e in variants_for(base, budget) {
        if e.expected != Expected::Ill {
            let env = env_for(e);
            if infer_program(&env, e.src, &options_for(e)).is_ok() {
                return true;
            }
        }
    }
    if budget == Budget::Nothing {
        for (b, src) in UNANNOTATED_FORMS {
            if *b == base {
                let env = crate::prelude::figure2();
                if infer_program(&env, src, &freezeml_core::Options::default()).is_ok() {
                    return true;
                }
            }
        }
    }
    false
}

/// The computed FreezeML row.
pub fn freezeml_row() -> SystemRow {
    let bases = base_ids();
    let mut failures = [0usize; 3];
    for (i, budget) in BUDGETS.iter().enumerate() {
        failures[i] = bases
            .iter()
            .filter(|b| !freezeml_handles(b, *budget))
            .count();
    }
    SystemRow {
        system: "FreezeML",
        failures,
        computed: true,
    }
}

/// The FreezeML failure *sets* per budget (the paper names them in prose:
/// `{A8, B1, B2, E1}` / `{A8, E1}` / `{A8, E1}`).
pub fn freezeml_failure_sets() -> [Vec<&'static str>; 3] {
    let bases = base_ids();
    let mut out: [Vec<&'static str>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, budget) in BUDGETS.iter().enumerate() {
        out[i] = bases
            .iter()
            .filter(|b| !freezeml_handles(b, *budget))
            .copied()
            .collect();
    }
    out
}

/// The computed plain-ML (Algorithm W) row: ML has no annotations at all,
/// so all three budgets coincide. An example counts as handled if *any*
/// freeze-free, annotation-free variant of it lies in the ML fragment and
/// types under W against the Figure 2 prelude restricted to ML-expressible
/// reasoning (the prelude types themselves may be higher-rank; W simply
/// fails when it meets them).
pub fn ml_row() -> SystemRow {
    let bases = base_ids();
    let mut handled = 0usize;
    for base in &bases {
        let ok = EXAMPLES
            .iter()
            .filter(|e| e.section != 'F' && e.base == *base)
            .any(|e| matches!(ml_accepts_src(&env_for(e), e.src), MlOutcome::Typed))
            || UNANNOTATED_FORMS.iter().any(|(b, src)| {
                *b == *base
                    && matches!(
                        ml_accepts_src(&crate::prelude::figure2(), src),
                        MlOutcome::Typed
                    )
            });
        if ok {
            handled += 1;
        }
    }
    let fails = bases.len() - handled;
    SystemRow {
        system: "ML (Algorithm W)",
        failures: [fails; 3],
        computed: true,
    }
}

/// The *plain* (freeze-free, and — except where the original statement
/// includes one — annotation-free) form of each of the 32 base examples,
/// as Serrano et al. stated them. These are the programs the HMF-style
/// baseline runs on: HMF has no freeze operator, so the Figure 1 decorated
/// forms are not HMF programs.
pub const PLAIN_FORMS: &[(&str, &str)] = &[
    ("A1", "fun x y -> y"),
    ("A2", "choose id"),
    ("A3", "choose [] ids"),
    ("A4", "fun (x : forall a. a -> a) -> x x"),
    ("A5", "id auto"),
    ("A6", "id auto'"),
    ("A7", "choose id auto"),
    ("A8", "choose id auto'"),
    ("A9", "f (choose id) ids"),
    ("A10", "poly id"),
    ("A11", "poly (fun x -> x)"),
    ("A12", "id poly (fun x -> x)"),
    ("B1", "fun f -> (f 1, f true)"),
    ("B2", "fun xs -> poly (head xs)"),
    ("C1", "length ids"),
    ("C2", "tail ids"),
    ("C3", "head ids"),
    ("C4", "single id"),
    ("C5", "id :: ids"),
    ("C6", "(fun x -> x) :: ids"),
    ("C7", "(single inc) ++ (single id)"),
    ("C8", "g (single id) ids"),
    ("C9", "map poly (single id)"),
    ("C10", "map head (single ids)"),
    ("D1", "app poly id"),
    ("D2", "revapp id poly"),
    ("D3", "runST argST"),
    ("D4", "app runST argST"),
    ("D5", "revapp argST runST"),
    ("E1", "k h l"),
    ("E2", "k (fun x -> h x) l"),
    ("E3", "r (fun x y -> y)"),
];

/// The environment for a base example: Figure 2 plus any `where` clauses
/// (taken from the Figure 1 variant with the same base).
fn env_for_base(base: &str) -> crate::prelude::TypeEnvAlias {
    let mut env = crate::prelude::figure2();
    if let Some(e) = EXAMPLES.iter().find(|e| e.base == base) {
        for (name, ty) in e.extra_env {
            env.push_str(name, ty).expect("extra signature parses");
        }
    }
    env
}

/// Does the HMF-style baseline handle `base` at the given budget?
/// At `Nothing` it runs the plain form; at `Binders`/`Terms` it may also
/// use the binder-annotated Figure 1 variants that lie in the HMF
/// fragment (B1⋆/B2⋆). HMF's real `Terms` row would additionally use rigid
/// term annotations, which our approximation does not implement.
pub fn hmf_handles(base: &str, budget: Budget) -> bool {
    let env = env_for_base(base);
    let plain_ok = PLAIN_FORMS
        .iter()
        .find(|(b, _)| *b == base)
        .map(|(_, src)| freezeml_hmf::hmf_accepts_src(&env, src) == Some(true))
        .unwrap_or(false);
    if plain_ok || budget == Budget::Nothing {
        return plain_ok;
    }
    EXAMPLES
        .iter()
        .filter(|e| e.base == base && e.has_type_annotation && e.mode == Mode::Standard)
        .any(|e| {
            let env = env_for(e);
            freezeml_hmf::hmf_accepts_src(&env, e.src) == Some(true)
        })
}

/// The HMF-approximation failure sets per budget.
pub fn hmf_failure_sets() -> [Vec<&'static str>; 3] {
    let bases = base_ids();
    let mut out: [Vec<&'static str>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, budget) in BUDGETS.iter().enumerate() {
        out[i] = bases
            .iter()
            .filter(|b| !hmf_handles(b, *budget))
            .copied()
            .collect();
    }
    out
}

/// The computed row for our HMF-style approximation (clearly labelled; the
/// recorded HMF row from the paper is separate).
pub fn hmf_approx_row() -> SystemRow {
    let bases = base_ids();
    let mut failures = [0usize; 3];
    for (i, budget) in BUDGETS.iter().enumerate() {
        failures[i] = bases.iter().filter(|b| !hmf_handles(b, *budget)).count();
    }
    SystemRow {
        system: "HMF (ours, approx)",
        failures,
        computed: true,
    }
}

/// Rows recorded from the paper's Table 1 (systems we do not reimplement;
/// see `DESIGN.md`, "Substitutions").
pub fn recorded_rows() -> Vec<SystemRow> {
    vec![
        SystemRow {
            system: "MLF",
            failures: [2, 1, 1],
            computed: false,
        },
        SystemRow {
            system: "HML",
            failures: [3, 2, 2],
            computed: false,
        },
        SystemRow {
            system: "FPH",
            failures: [6, 4, 4],
            computed: false,
        },
        SystemRow {
            system: "GI",
            failures: [8, 6, 2],
            computed: false,
        },
        SystemRow {
            system: "HMF",
            failures: [11, 6, 6],
            computed: false,
        },
    ]
}

/// The full table: recorded rows plus the computed FreezeML and ML rows,
/// sorted by the `Nothing` column like the paper (most expressive first),
/// with the computed baselines appended.
pub fn full_table() -> Vec<SystemRow> {
    let mut rows = recorded_rows();
    rows.push(freezeml_row());
    rows.sort_by_key(|r| r.failures[0]);
    rows.push(hmf_approx_row());
    rows.push(ml_row());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline Table 1 reproduction: FreezeML fails 4/2/2.
    #[test]
    fn freezeml_row_matches_paper() {
        assert_eq!(freezeml_row().failures, [4, 2, 2]);
    }

    /// And the failure sets are exactly the ones the paper names.
    #[test]
    fn freezeml_failure_sets_match_paper() {
        let [nothing, binders, terms] = freezeml_failure_sets();
        assert_eq!(nothing, ["A8", "B1", "B2", "E1"]);
        assert_eq!(binders, ["A8", "E1"]);
        assert_eq!(terms, ["A8", "E1"]);
    }

    #[test]
    fn freezeml_ranks_third_at_nothing() {
        let table = full_table();
        let position = table.iter().position(|r| r.system == "FreezeML").unwrap();
        assert_eq!(position, 2, "paper: MLF first, HML second, FreezeML third");
    }

    #[test]
    fn ml_baseline_fails_most_poly_examples() {
        let row = ml_row();
        // Plain ML handles only the examples with no essential use of
        // first-class polymorphism (A1, C1/C2/C4/C7-style rows).
        assert!(row.failures[0] > 20, "ML row: {:?}", row.failures);
        assert!(row.failures[0] < 32, "ML should still handle some rows");
    }

    #[test]
    fn there_are_32_bases() {
        assert_eq!(base_ids().len(), 32);
    }

    #[test]
    fn hmf_approx_has_the_papers_shape() {
        // We do not claim to match HMF's exact counts (see the crate docs
        // for the approximation), but the qualitative ordering the paper
        // reports must hold: FreezeML ≪ HMF ≪ plain ML.
        let fz = freezeml_row().failures[0];
        let hmf = hmf_approx_row().failures[0];
        let ml = ml_row().failures[0];
        assert!(fz < hmf, "FreezeML {fz} should beat HMF-approx {hmf}");
        assert!(hmf < ml, "HMF-approx {hmf} should beat plain ML {ml}");
        // And it should be in the neighbourhood of the recorded 11.
        assert!((9..=15).contains(&hmf), "HMF-approx row drifted: {hmf}");
    }

    #[test]
    fn hmf_handles_the_headline_heuristic_examples() {
        // The examples §7 credits HMF with: minimal polymorphism and
        // argument generalisation (A10–A12 "all other five systems can
        // handle without annotations").
        for base in [
            "A1", "A2", "A5", "A10", "A11", "A12", "C3", "D1", "D3", "D4",
        ] {
            assert!(
                hmf_handles(base, Budget::Nothing),
                "HMF-approx should handle {base}"
            );
        }
        // And the ones where heuristics are not enough.
        for base in ["A8", "B1", "B2", "E1", "E3"] {
            assert!(
                !hmf_handles(base, Budget::Nothing),
                "HMF-approx should fail {base}"
            );
        }
    }
}
