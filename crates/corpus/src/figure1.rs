//! Figure 1: the 50 example FreezeML terms and their types.
//!
//! Sections A–E are taken from Serrano et al. (2018); section F contains
//! the paper's additional FreezeML programs. Conventions from the paper:
//!
//! * a `•`-suffixed id is a variant with extra freeze/generalisation
//!   operators that changes the inferred type;
//! * a `⋆`-suffixed id means explicit freeze/generalise/instantiate is
//!   *mandatory* — only the decorated form typechecks;
//! * `†` (example F10) typechecks only without the value restriction
//!   ([`Mode::Pure`]).
//!
//! Source text is in the ASCII surface syntax: `~x` for `⌈x⌉`, `$( … )`
//! for `$(…)`, postfix `@` for instantiation.

/// Expected outcome of type inference on an example.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// Well typed, with this (α-equivalence class of) type.
    Type(&'static str),
    /// Ill typed (`✕` in Figure 1).
    Ill,
}

/// Which checker configuration the example needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The paper's formal system (value restriction, variable
    /// instantiation).
    Standard,
    /// "Pure" FreezeML — no value restriction (example F10†).
    Pure,
}

/// One row of Figure 1.
#[derive(Clone, Copy, Debug)]
pub struct Example {
    /// The paper's identifier (`A1`, `A1•`, `A9⋆`, `F10†`, …).
    pub id: &'static str,
    /// Section letter `A`–`F`.
    pub section: char,
    /// The base example this is a variant of (used by the Table 1 grouping).
    pub base: &'static str,
    /// Source text in the surface syntax.
    pub src: &'static str,
    /// Expected outcome.
    pub expected: Expected,
    /// Checker configuration.
    pub mode: Mode,
    /// Extra signatures beyond Figure 2 (`where f : …` side conditions).
    pub extra_env: &'static [(&'static str, &'static str)],
    /// Does the source contain a *type* annotation? (Freezes, `$`, and `@`
    /// do not count — Appendix A.)
    pub has_type_annotation: bool,
}

const NO_EXTRA: &[(&str, &str)] = &[];
const ENV_A9: &[(&str, &str)] = &[("f", "forall a. (a -> a) -> List a -> a")];
const ENV_C8: &[(&str, &str)] = &[("g", "forall a. List a -> List a -> a")];
const ENV_E: &[(&str, &str)] = &[
    ("k", "forall a. a -> List a -> a"),
    ("h", "Int -> forall a. a -> a"),
    ("l", "List (forall a. Int -> a -> a)"),
];
const ENV_E3: &[(&str, &str)] = &[("r", "(forall a. a -> forall b. b -> b) -> Int")];

macro_rules! ex {
    ($id:literal, $section:literal, $base:literal, $src:literal, $expected:expr,
     $mode:expr, $extra:expr, $ann:literal) => {
        Example {
            id: $id,
            section: $section,
            base: $base,
            src: $src,
            expected: $expected,
            mode: $mode,
            extra_env: $extra,
            has_type_annotation: $ann,
        }
    };
}

use Expected::{Ill, Type};
use Mode::{Pure, Standard};

/// Every row of Figure 1, in paper order.
///
/// Transcription note: in F10† the argument of `auto'` is the *frozen*
/// `⌈x⌉` — only a frozen variable can be passed at the polytype
/// `∀a.a→a` that `auto'` demands (the Var rule always instantiates, §3.1),
/// and the example's reported type arises from generalising `auto' ⌈x⌉`'s
/// result, which is what the † (no value restriction) enables.
pub const EXAMPLES: &[Example] = &[
    // ---------------------------------------- A: polymorphic instantiation
    ex!(
        "A1",
        'A',
        "A1",
        "fun x y -> y",
        Type("a -> b -> b"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A1•",
        'A',
        "A1",
        "$(fun x y -> y)",
        Type("forall a b. a -> b -> b"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A2",
        'A',
        "A2",
        "choose id",
        Type("(a -> a) -> a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A2•",
        'A',
        "A2",
        "choose ~id",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A3",
        'A',
        "A3",
        "choose [] ids",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A4",
        'A',
        "A4",
        "fun (x : forall a. a -> a) -> x x",
        Type("(forall a. a -> a) -> b -> b"),
        Standard,
        NO_EXTRA,
        true
    ),
    ex!(
        "A4•",
        'A',
        "A4",
        "fun (x : forall a. a -> a) -> x ~x",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        true
    ),
    ex!(
        "A5",
        'A',
        "A5",
        "id auto",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A6",
        'A',
        "A6",
        "id auto'",
        Type("(forall a. a -> a) -> b -> b"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A6•",
        'A',
        "A6",
        "id ~auto'",
        Type("forall b. (forall a. a -> a) -> b -> b"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A7",
        'A',
        "A7",
        "choose id auto",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A8",
        'A',
        "A8",
        "choose id auto'",
        Ill,
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A9⋆",
        'A',
        "A9",
        "f (choose ~id) ids",
        Type("forall a. a -> a"),
        Standard,
        ENV_A9,
        false
    ),
    ex!(
        "A10⋆",
        'A',
        "A10",
        "poly ~id",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A11⋆",
        'A',
        "A11",
        "poly $(fun x -> x)",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "A12⋆",
        'A',
        "A12",
        "id poly $(fun x -> x)",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    // ------------------------------ B: inference with polymorphic arguments
    ex!(
        "B1⋆",
        'B',
        "B1",
        "fun (f : forall a. a -> a) -> (f 1, f true)",
        Type("(forall a. a -> a) -> Int * Bool"),
        Standard,
        NO_EXTRA,
        true
    ),
    ex!(
        "B2⋆",
        'B',
        "B2",
        "fun (xs : List (forall a. a -> a)) -> poly (head xs)",
        Type("List (forall a. a -> a) -> Int * Bool"),
        Standard,
        NO_EXTRA,
        true
    ),
    // ---------------------------------------- C: functions on polymorphic lists
    ex!(
        "C1",
        'C',
        "C1",
        "length ids",
        Type("Int"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C2",
        'C',
        "C2",
        "tail ids",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C3",
        'C',
        "C3",
        "head ids",
        Type("forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C4",
        'C',
        "C4",
        "single id",
        Type("List (a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C4•",
        'C',
        "C4",
        "single ~id",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C5⋆",
        'C',
        "C5",
        "~id :: ids",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C6⋆",
        'C',
        "C6",
        "$(fun x -> x) :: ids",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C7",
        'C',
        "C7",
        "(single inc) ++ (single id)",
        Type("List (Int -> Int)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C8⋆",
        'C',
        "C8",
        "g (single ~id) ids",
        Type("forall a. a -> a"),
        Standard,
        ENV_C8,
        false
    ),
    ex!(
        "C9⋆",
        'C',
        "C9",
        "map poly (single ~id)",
        Type("List (Int * Bool)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "C10",
        'C',
        "C10",
        "map head (single ids)",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    // ---------------------------------------- D: application functions
    ex!(
        "D1⋆",
        'D',
        "D1",
        "app poly ~id",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "D2⋆",
        'D',
        "D2",
        "revapp ~id poly",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "D3⋆",
        'D',
        "D3",
        "runST ~argST",
        Type("Int"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "D4⋆",
        'D',
        "D4",
        "app runST ~argST",
        Type("Int"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "D5⋆",
        'D',
        "D5",
        "revapp ~argST runST",
        Type("Int"),
        Standard,
        NO_EXTRA,
        false
    ),
    // ---------------------------------------- E: η-expansion
    ex!("E1", 'E', "E1", "k h l", Ill, Standard, ENV_E, false),
    ex!(
        "E2⋆",
        'E',
        "E2",
        "k $(fun x -> (h x)@) l",
        Type("forall a. Int -> a -> a"),
        Standard,
        ENV_E,
        false
    ),
    ex!(
        "E3",
        'E',
        "E3",
        "r (fun x y -> y)",
        Ill,
        Standard,
        ENV_E3,
        false
    ),
    ex!(
        "E3•",
        'E',
        "E3",
        "r $(fun x -> $(fun y -> y))",
        Type("Int"),
        Standard,
        ENV_E3,
        false
    ),
    // ---------------------------------------- F: FreezeML programs
    ex!(
        "F1",
        'F',
        "F1",
        "$(fun x -> x)",
        Type("forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F2",
        'F',
        "F2",
        "[~id]",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F3",
        'F',
        "F3",
        "$(fun (x : forall a. a -> a) -> x ~x)",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        true
    ),
    ex!(
        "F4",
        'F',
        "F4",
        "$(fun (x : forall a. a -> a) -> x x)",
        Type("forall b. (forall a. a -> a) -> b -> b"),
        Standard,
        NO_EXTRA,
        true
    ),
    ex!(
        "F5⋆",
        'F',
        "F5",
        "auto ~id",
        Type("forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F6",
        'F',
        "F6",
        "(head ids) :: ids",
        Type("List (forall a. a -> a)"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F7⋆",
        'F',
        "F7",
        "(head ids)@ 3",
        Type("Int"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F8",
        'F',
        "F8",
        "choose (head ids)",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F8•",
        'F',
        "F8",
        "choose (head ids)@",
        Type("(a -> a) -> a -> a"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F9",
        'F',
        "F9",
        "let f = revapp ~id in f poly",
        Type("Int * Bool"),
        Standard,
        NO_EXTRA,
        false
    ),
    ex!(
        "F10†",
        'F',
        "F10",
        "choose id (fun (x : forall a. a -> a) -> $(auto' ~x))",
        Type("(forall a. a -> a) -> forall a. a -> a"),
        Pure,
        NO_EXTRA,
        true
    ),
];

/// Look up an example by its paper id.
pub fn by_id(id: &str) -> Option<&'static Example> {
    EXAMPLES.iter().find(|e| e.id == id)
}

/// All examples in a section.
pub fn section(letter: char) -> impl Iterator<Item = &'static Example> {
    EXAMPLES.iter().filter(move |e| e.section == letter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_forty_nine_rows() {
        assert_eq!(EXAMPLES.len(), 49);
    }

    #[test]
    fn sections_have_paper_counts() {
        assert_eq!(section('A').count(), 16);
        assert_eq!(section('B').count(), 2);
        assert_eq!(section('C').count(), 11);
        assert_eq!(section('D').count(), 5);
        assert_eq!(section('E').count(), 4);
        assert_eq!(section('F').count(), 11);
    }

    #[test]
    fn thirty_two_base_examples_in_a_to_e() {
        let mut bases: Vec<&str> = EXAMPLES
            .iter()
            .filter(|e| e.section != 'F')
            .map(|e| e.base)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 32, "Appendix A counts 32 examples");
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = EXAMPLES.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXAMPLES.len());
    }

    #[test]
    fn all_sources_parse() {
        for e in EXAMPLES {
            freezeml_core::parse_term(e.src).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        }
    }

    #[test]
    fn all_expected_types_parse() {
        for e in EXAMPLES {
            if let Expected::Type(t) = e.expected {
                freezeml_core::parse_type(t).unwrap_or_else(|err| panic!("{}: {err}", e.id));
            }
        }
    }

    #[test]
    fn extra_envs_parse() {
        for e in EXAMPLES {
            for (name, ty) in e.extra_env {
                freezeml_core::parse_type(ty)
                    .unwrap_or_else(|err| panic!("{} ({name}): {err}", e.id));
            }
        }
    }

    #[test]
    fn only_f10_needs_pure_mode() {
        let pure: Vec<&str> = EXAMPLES
            .iter()
            .filter(|e| e.mode == Mode::Pure)
            .map(|e| e.id)
            .collect();
        assert_eq!(pure, ["F10†"]);
    }
}
