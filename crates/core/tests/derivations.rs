//! White-box tests of the typed derivation trees produced by inference —
//! the data the `C⟦−⟧` translation consumes (Figure 11). Each test checks
//! that the recorded judgement components (instantiations at Var nodes,
//! generalised variables at Let nodes, split variables at LetAnn nodes)
//! are exactly what the paper's rules prescribe.

use freezeml_core::{infer_term, parse_term, Options, Type, TypeEnv, TypedNode, TypedTerm};

fn env() -> TypeEnv {
    let mut g = TypeEnv::new();
    for (n, t) in [
        ("id", "forall a. a -> a"),
        ("inc", "Int -> Int"),
        ("choose", "forall a. a -> a -> a"),
        ("poly", "(forall a. a -> a) -> Int * Bool"),
        ("pair", "forall a b. a -> b -> a * b"),
        ("ids", "List (forall a. a -> a)"),
        ("head", "forall a. List a -> a"),
        ("revapp", "forall a b. a -> (a -> b) -> b"),
    ] {
        g.push_str(n, t).unwrap();
    }
    g
}

fn derivation(src: &str) -> TypedTerm {
    let term = parse_term(src).unwrap();
    infer_term(&env(), &term, &Options::default())
        .unwrap()
        .typed
}

#[test]
fn frozen_var_nodes_have_no_instantiation() {
    let d = derivation("~id");
    match &d.node {
        TypedNode::FrozenVar { name } => assert_eq!(name.to_string(), "id"),
        other => panic!("{other:?}"),
    }
    assert_eq!(d.ty.to_string(), "forall a. a -> a");
}

#[test]
fn var_nodes_record_resolved_instantiations() {
    // In `inc (id 3)`, id's quantifier must be recorded as instantiated at
    // Int after resolution.
    let d = derivation("inc (id 3)");
    fn find_id(t: &TypedTerm) -> Option<&TypedTerm> {
        match &t.node {
            TypedNode::Var { name, .. } if name.to_string() == "id" => Some(t),
            TypedNode::App { func, arg } => find_id(func).or_else(|| find_id(arg)),
            _ => None,
        }
    }
    let id_node = find_id(&d).expect("id occurrence");
    match &id_node.node {
        TypedNode::Var { inst, scheme, .. } => {
            assert_eq!(inst.len(), 1, "one quantifier");
            assert_eq!(inst[0].1, Type::int(), "instantiated at Int");
            assert_eq!(scheme.to_string(), "forall a. a -> a");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(id_node.ty, Type::arrow(Type::int(), Type::int()));
}

#[test]
fn monomorphic_vars_record_empty_instantiations() {
    let d = derivation("inc 1");
    match &d.node {
        TypedNode::App { func, .. } => match &func.node {
            TypedNode::Var { inst, .. } => assert!(inst.is_empty()),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn generalising_let_records_gen_vars() {
    // $(fun x -> x) = let v = λx.x in ⌈v⌉ — the Let generalises one var.
    let d = derivation("$(fun x -> x)");
    match &d.node {
        TypedNode::Let {
            gen_vars,
            mono_vars,
            rhs_gval,
            bound_ty,
            ..
        } => {
            assert!(rhs_gval);
            assert_eq!(gen_vars.len(), 1);
            assert!(mono_vars.is_empty());
            assert_eq!(bound_ty.split_foralls().0.len(), 1);
            assert!(bound_ty.alpha_eq(&freezeml_core::parse_type("forall a. a -> a").unwrap()));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn non_value_let_records_demoted_vars() {
    // let f = revapp ~id in f poly — the rhs is an application, so its
    // residual variable is demoted, not generalised.
    let d = derivation("let f = revapp ~id in f poly");
    match &d.node {
        TypedNode::Let {
            gen_vars,
            mono_vars,
            rhs_gval,
            ..
        } => {
            assert!(!rhs_gval);
            assert!(gen_vars.is_empty());
            assert_eq!(mono_vars.len(), 1, "the b in ((∀a.a→a)→b)→b");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn lam_nodes_record_the_resolved_parameter_type() {
    let d = derivation("fun x -> inc x");
    match &d.node {
        TypedNode::Lam { param_ty, .. } => assert_eq!(*param_ty, Type::int()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn let_ann_records_split_vars() {
    // Generalising case: annotation quantifiers are split into the rhs.
    let d = derivation("let (f : forall a. a -> a) = fun x -> x in f 1");
    match &d.node {
        TypedNode::LetAnn {
            split_vars,
            rhs_gval,
            ann,
            ..
        } => {
            assert!(rhs_gval);
            assert_eq!(split_vars.len(), 1);
            assert_eq!(ann.to_string(), "forall a. a -> a");
        }
        other => panic!("{other:?}"),
    }
    // Non-value case: nothing splits.
    let d2 = derivation("let (g : forall a. a -> a) = ~id in g 2");
    match &d2.node {
        TypedNode::LetAnn {
            split_vars,
            rhs_gval,
            ..
        } => {
            assert!(!rhs_gval);
            assert!(split_vars.is_empty());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn erase_recovers_the_source_term() {
    for src in [
        "fun x -> inc x",
        "let f = fun x -> x in poly ~f",
        "choose ~id",
        "let (f : Int -> Int) = fun x -> x in f 1",
    ] {
        let term = parse_term(src).unwrap();
        let d = derivation(src);
        assert_eq!(d.erase(), term, "{src}");
    }
}

#[test]
fn derivations_are_fully_resolved_for_closed_types() {
    // After infer_term the tree's types reflect the final substitution:
    // no node of `poly ~id` mentions an unresolved variable.
    let d = derivation("poly ~id");
    let mut ok = true;
    fn visit(t: &TypedTerm, ok: &mut bool) {
        if !t.ty.ftv().is_empty() {
            *ok = false;
        }
        match &t.node {
            TypedNode::App { func, arg } => {
                visit(func, ok);
                visit(arg, ok);
            }
            TypedNode::Lam { body, .. } | TypedNode::LamAnn { body, .. } => visit(body, ok),
            TypedNode::Let { rhs, body, .. } | TypedNode::LetAnn { rhs, body, .. } => {
                visit(rhs, ok);
                visit(body, ok);
            }
            _ => {}
        }
    }
    visit(&d, &mut ok);
    assert!(ok, "unresolved flexible variables in the derivation");
}

#[test]
fn eliminator_nodes_only_under_eliminator_mode() {
    let term = parse_term("(head ids) 3").unwrap();
    assert!(infer_term(&env(), &term, &Options::default()).is_err());
    let out = infer_term(&env(), &term, &Options::eliminator()).unwrap();
    fn has_implicit(t: &TypedTerm) -> bool {
        match &t.node {
            TypedNode::ImplicitInst { .. } => true,
            TypedNode::App { func, arg } => has_implicit(func) || has_implicit(arg),
            TypedNode::Lam { body, .. } | TypedNode::LamAnn { body, .. } => has_implicit(body),
            TypedNode::Let { rhs, body, .. } | TypedNode::LetAnn { rhs, body, .. } => {
                has_implicit(rhs) || has_implicit(body)
            }
            _ => false,
        }
    }
    assert!(has_implicit(&out.typed));
}
