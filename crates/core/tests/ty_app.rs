//! Tests for the explicit type application extension `M@[A]` (§6).
//!
//! "Given that FreezeML is explicit about the order of quantifiers, adding
//! support for explicit type application is straightforward. We have
//! implemented this feature in Links."

use freezeml_core::{infer_program, parse_term, Options, Term, TypeEnv, TypeError};

fn env() -> TypeEnv {
    let mut g = TypeEnv::new();
    g.push_str("id", "forall a. a -> a").unwrap();
    g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
    g.push_str("pair'", "forall b a. a -> b -> a * b").unwrap();
    g.push_str("ids", "List (forall a. a -> a)").unwrap();
    g.push_str("head", "forall a. List a -> a").unwrap();
    g
}

fn ty_of(src: &str) -> Result<String, String> {
    infer_program(&env(), src, &Options::default())
        .map(|t| t.to_string())
        .map_err(|e| e.to_string())
}

#[test]
fn parses_as_type_application() {
    let t = parse_term("~id@[Int]").unwrap();
    assert!(matches!(t, Term::TyApp(_, _)));
    // And pretty-prints back.
    assert_eq!(t.to_string(), "~id@[Int]");
}

#[test]
fn instantiates_outermost_quantifier() {
    assert_eq!(ty_of("~id@[Int]").unwrap(), "Int -> Int");
    assert_eq!(ty_of("~id@[Bool] true").unwrap(), "Bool");
}

#[test]
fn respects_quantifier_order() {
    // pair : ∀a b. a → b → a × b — first argument instantiates a.
    assert_eq!(
        ty_of("~pair@[Int]").unwrap(),
        "forall b. Int -> b -> Int * b"
    );
    // pair' : ∀b a. a → b → a × b — first argument instantiates b.
    assert_eq!(
        ty_of("~pair'@[Int]").unwrap(),
        "forall a. a -> Int -> a * Int"
    );
}

#[test]
fn chains_left_to_right() {
    assert_eq!(
        ty_of("~pair@[Int]@[Bool]").unwrap(),
        "Int -> Bool -> Int * Bool"
    );
    assert_eq!(ty_of("~pair@[Int]@[Bool] 1 false").unwrap(), "Int * Bool");
}

#[test]
fn impredicative_type_arguments_are_allowed() {
    assert_eq!(
        ty_of("~id@[forall a. a -> a]").unwrap(),
        "(forall a. a -> a) -> forall a. a -> a"
    );
    // The result of applying it to ~id is again the full polytype; a
    // further application needs explicit instantiation.
    assert_eq!(
        ty_of("~id@[forall a. a -> a] ~id").unwrap(),
        "forall a. a -> a"
    );
    assert!(ty_of("~id@[forall a. a -> a] ~id 3").is_err());
    assert_eq!(ty_of("(~id@[forall a. a -> a] ~id)@ 3").unwrap(), "Int");
}

#[test]
fn works_on_arbitrary_quantified_terms() {
    // head ids : ∀a.a→a — a quantified non-variable term.
    assert_eq!(ty_of("(head ids)@[Int] 3").unwrap(), "Int");
}

#[test]
fn rejects_unquantified_terms() {
    let e = infer_program(&env(), "~id@[Int]@[Bool]", &Options::default());
    assert!(matches!(
        e,
        Err(freezeml_core::ProgramError::Type(
            TypeError::CannotTypeApply { .. }
        ))
    ));
    // A plain variable occurrence is already instantiated.
    assert!(ty_of("id@[Int]").is_err());
    assert!(ty_of("3@[Int]").is_err());
}

#[test]
fn type_argument_must_be_well_scoped() {
    assert!(ty_of("~id@[a]").is_err());
    // But annotation-bound variables are in scope.
    assert_eq!(
        ty_of("let (f : forall a. a -> a) = (fun (x : a) -> ~id@[a] x) in f 3").unwrap(),
        "Int"
    );
}

#[test]
fn ty_app_is_not_a_value() {
    // Conservative choice: M@[A] is never generalised by `let`.
    let t = parse_term("~id@[Int]").unwrap();
    assert!(!t.is_value());
    assert!(!t.is_guarded_value());
    // let f = ~id@[Int] in ... does not generalise (nothing to generalise
    // here anyway, but the classification matters for the value
    // restriction).
    assert_eq!(ty_of("let f = ~id@[Int] in f 3").unwrap(), "Int");
}

#[test]
fn equivalent_to_the_annotated_let_idiom() {
    // ~id@[Int] agrees with the pre-extension idiom of binding an
    // instantiating occurrence at an annotated type.
    let a = ty_of("~id@[Int]").unwrap();
    let b = ty_of("let (f : Int -> Int) = id in ~f").unwrap();
    assert_eq!(a, b);
    // Note the frozen form `let (f : Int -> Int) = ~id in ~f` is
    // *ill-typed*: a frozen variable is not a guarded value, so the
    // annotation must match its polytype exactly (split, Figure 8).
    assert!(ty_of("let (f : Int -> Int) = ~id in ~f").is_err());
}
