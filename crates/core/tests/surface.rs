//! Edge-case tests for the surface syntax (lexer, parser, pretty-printer)
//! and for shadowing/scoping behaviour of inference.

use freezeml_core::{infer_program, parse_term, parse_type, Options, Term, TypeEnv};

fn env() -> TypeEnv {
    let mut g = TypeEnv::new();
    for (n, t) in [
        ("id", "forall a. a -> a"),
        ("inc", "Int -> Int"),
        ("poly", "(forall a. a -> a) -> Int * Bool"),
        ("pair", "forall a b. a -> b -> a * b"),
        ("cons", "forall a. a -> List a -> List a"),
        ("nil", "forall a. List a"),
        ("plus", "Int -> Int -> Int"),
        ("append", "forall a. List a -> List a -> List a"),
    ] {
        g.push_str(n, t).unwrap();
    }
    g
}

fn ty_of(src: &str) -> Result<String, String> {
    infer_program(&env(), src, &Options::default())
        .map(|t| t.to_string())
        .map_err(|e| e.to_string())
}

// ------------------------------------------------------------------ parser

#[test]
fn deeply_nested_parens() {
    assert_eq!(ty_of("((((id)))) ((((1))))").unwrap(), "Int");
    let t = parse_type("((((Int))))").unwrap();
    assert_eq!(t.to_string(), "Int");
}

#[test]
fn lambda_with_many_params_mixed_annotations() {
    let t = parse_term("fun a (b : Int) c (d : forall x. x -> x) -> a").unwrap();
    // Four nested lambdas.
    let mut count = 0;
    let mut cur = &t;
    loop {
        match cur {
            Term::Lam(_, b) => {
                count += 1;
                cur = b;
            }
            Term::LamAnn(_, _, b) => {
                count += 1;
                cur = b;
            }
            _ => break,
        }
    }
    assert_eq!(count, 4);
}

#[test]
fn operator_precedence_mixes() {
    // 1 + 2 :: [3] ++ []  ≡  cons (plus 1 2) (append (cons 3 nil) nil)
    let t = parse_term("1 + 2 :: [3] ++ []").unwrap();
    let printed = t.to_string();
    assert!(printed.contains("cons"), "{printed}");
    assert!(printed.contains("plus"), "{printed}");
    assert!(printed.contains("append"), "{printed}");
    assert_eq!(ty_of("1 + 2 :: [3] ++ []").unwrap(), "List Int");
}

#[test]
fn comments_everywhere() {
    let src = "-- leading comment\nlet x = 1 -- trailing\n in -- middle\n x";
    assert_eq!(ty_of(src).unwrap(), "Int");
}

#[test]
fn parse_errors_carry_position_and_message() {
    let e = parse_term("fun -> x").unwrap_err();
    assert!(e.msg.contains("parameter"), "{e}");
    let e2 = parse_term("let x 1 in x").unwrap_err();
    assert!(e2.to_string().contains("="), "{e2}");
    let e3 = parse_type("forall . Int").unwrap_err();
    assert!(e3.msg.contains("type variable"), "{e3}");
    // Positions point into the source.
    let e4 = parse_term("id ?").unwrap_err();
    assert_eq!(e4.pos, 3);
}

#[test]
fn keywords_are_not_identifiers() {
    assert!(parse_term("let let = 1 in let").is_err());
    assert!(parse_term("fun in -> in").is_err());
}

#[test]
fn primes_and_underscores_in_identifiers() {
    let mut g = env();
    g.push_str("f_1'", "Int -> Int").unwrap();
    assert_eq!(
        infer_program(&g, "f_1' 1", &Options::default())
            .unwrap()
            .to_string(),
        "Int"
    );
}

#[test]
fn unicode_is_rejected_cleanly() {
    assert!(parse_term("λx.x").is_err());
    assert!(parse_term("∀a.a").is_err());
}

#[test]
fn empty_input_is_an_error() {
    assert!(parse_term("").is_err());
    assert!(parse_type("").is_err());
    assert!(parse_term("   -- just a comment").is_err());
}

#[test]
fn big_integer_literals() {
    assert_eq!(ty_of("9223372036854775807").unwrap(), "Int");
    assert!(parse_term("99999999999999999999999999").is_err());
}

#[test]
fn gen_of_tuple_shorthand() {
    // `$(M, N)` generalises the pair application.
    assert_eq!(ty_of("$(id, inc)").unwrap(), "(a -> a) * (Int -> Int)");
}

// --------------------------------------------------------------- printing

#[test]
fn printed_types_reparse_to_alpha_equal() {
    for src in [
        "forall a. (forall b. b -> a) -> List a",
        "(Int -> Int) * (Bool -> Bool)",
        "forall a b c. a -> (b -> c) -> a * b * c",
        "List (List (forall a. a -> a))",
        "ST (forall a. a) Int",
    ] {
        let t = parse_type(src).unwrap();
        let back = parse_type(&t.to_string()).unwrap();
        assert!(t.alpha_eq(&back), "{src} → {t}");
    }
}

#[test]
fn printed_terms_reparse_to_equal_terms() {
    for src in [
        "fun x -> x",
        "fun (x : forall a. a -> a) -> x ~x",
        "let f = fun x -> x in poly ~f",
        "let (g : Int -> Int) = fun y -> y in g 1",
        "~id@[Int] 3",
    ] {
        let t = parse_term(src).unwrap();
        let back = parse_term(&t.to_string())
            .unwrap_or_else(|e| panic!("{src} printed as `{t}` which does not reparse: {e}"));
        assert_eq!(t, back, "{src}");
    }
}

// ------------------------------------------------------------- shadowing

#[test]
fn term_variable_shadowing_in_lets() {
    assert_eq!(ty_of("let x = 1 in let x = true in x").unwrap(), "Bool");
    assert_eq!(ty_of("let x = 1 in let x = inc x in x").unwrap(), "Int");
}

#[test]
fn lambda_shadows_let() {
    assert_eq!(ty_of("let x = 1 in (fun x -> x) true").unwrap(), "Bool");
}

#[test]
fn frozen_occurrences_see_the_innermost_binding() {
    // Inner x : Int → Int shadows the outer polymorphic one.
    assert_eq!(
        ty_of("let x = fun y -> y in let (x : Int -> Int) = fun y -> y in ~x").unwrap(),
        "Int -> Int"
    );
}

#[test]
fn prelude_shadowing() {
    // A local `id` at a more specific type shadows the prelude's.
    assert_eq!(
        ty_of("let (id : Int -> Int) = fun x -> x in ~id").unwrap(),
        "Int -> Int"
    );
}

#[test]
fn deep_nesting_of_generalisation() {
    // $($($(fun x -> x))) — inner gens freeze and rebind; idempotent here.
    assert_eq!(ty_of("$(fun x -> x)").unwrap(), "forall a. a -> a");
    assert!(ty_of("$$(fun x -> x)").is_ok());
}

#[test]
fn at_chains() {
    // ~id@@@ — freeze, then instantiate repeatedly: each @ re-instantiates.
    assert_eq!(ty_of("~id@").unwrap(), "a -> a");
    assert_eq!(ty_of("~id@@").unwrap(), "a -> a");
    assert_eq!(ty_of("(~id@) 1").unwrap(), "Int");
}

#[test]
fn canonicalize_survives_more_than_26_variables() {
    use freezeml_core::{TyVar, Type};
    // 30 distinct fresh variables: letters wrap to a1, b1, … without
    // collisions.
    let vars: Vec<TyVar> = (0..30).map(|_| TyVar::fresh()).collect();
    let ty = vars
        .iter()
        .rev()
        .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
    let canon = ty.canonicalize();
    let names: Vec<String> = canon.ftv().iter().map(|v| v.to_string()).collect();
    assert_eq!(names.len(), 30);
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), 30, "collision in {names:?}");
    assert_eq!(names[0], "a");
    assert!(names.contains(&"a1".to_string()));
    // And it still round-trips through the printer.
    let back = freezeml_core::parse_type(&canon.to_string()).unwrap();
    assert!(canon.alpha_eq(&back));
}

#[test]
fn display_of_errors_uses_surface_syntax() {
    let err = infer_program(&env(), "poly inc", &Options::default()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("Int -> Int") || msg.contains("forall"),
        "{msg}"
    );
}
