//! Property-based tests for the core data structures and the metatheory.
//!
//! The paper's Theorems 4–7 (unification and inference soundness,
//! completeness, and principality) are exercised here as executable
//! properties over randomly generated types, substitutions, and terms.

use freezeml_core::kinding;
use freezeml_core::{
    check_typing, infer_term, matches, parse_type, unify, Kind, KindEnv, Options, RefinedEnv,
    Subst, Term, TyVar, Type, TypeEnv,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- strategies

/// Flexible variable pool (placed in `Θ` by tests that need them).
fn flex_pool() -> Vec<TyVar> {
    ["f0", "f1", "f2", "f3"].iter().map(TyVar::named).collect()
}

/// Closed monotypes.
fn arb_closed_mono() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![Just(Type::int()), Just(Type::bool())];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

/// Closed types, possibly polymorphic (quantifiers from a fixed pool).
fn arb_closed_type() -> impl Strategy<Value = Type> {
    arb_open_type(Vec::new())
}

/// Types whose free variables are drawn from `free`; binders come from a
/// disjoint pool.
fn arb_open_type(free: Vec<TyVar>) -> impl Strategy<Value = Type> {
    let mut leaves = vec![Just(Type::int()).boxed(), Just(Type::bool()).boxed()];
    for v in &free {
        leaves.push(Just(Type::Var(*v)).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    leaf.prop_recursive(4, 24, 3, move |inner| {
        prop_oneof![
            4 => (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            2 => inner.clone().prop_map(Type::list),
            1 => inner.clone().prop_map(|body| {
                // Close over a bound variable that may occur via the leaf
                // pool or not at all.
                let b = TyVar::named("q");
                Type::Forall(b, Box::new(body))
            }),
            1 => inner.prop_map(|body| Type::Forall(
                TyVar::named("q"),
                Box::new(Type::arrow(Type::var("q"), body)),
            )),
        ]
    })
}

/// Types over the flexible pool (no quantifiers at flexible positions is
/// not required — unify handles ∀ bodies too).
fn arb_flex_type() -> impl Strategy<Value = Type> {
    arb_open_type(flex_pool())
}

/// A substitution from the flexible pool to closed types.
fn arb_ground_subst() -> impl Strategy<Value = Subst> {
    proptest::collection::vec(arb_closed_type(), 4)
        .prop_map(|tys| Subst::from_pairs(flex_pool().into_iter().zip(tys)))
}

/// The flexible environment for the pool, all at kind ⋆.
fn flex_env() -> RefinedEnv {
    flex_pool().into_iter().map(|v| (v, Kind::Poly)).collect()
}

// ------------------------------------------------------------- type algebra

proptest! {
    #[test]
    fn alpha_eq_is_reflexive(t in arb_closed_type()) {
        prop_assert!(t.alpha_eq(&t));
    }

    #[test]
    fn alpha_eq_respects_fresh_renaming(t in arb_closed_type()) {
        // Renaming a bound variable does not change the α-class. We rename
        // the outermost binder if there is one.
        if let Type::Forall(a, body) = &t {
            let c = TyVar::named("zz");
            let renamed = Type::Forall(
                c,
                Box::new(body.rename_free(a, &Type::Var(c))),
            );
            prop_assert!(t.alpha_eq(&renamed));
        }
    }

    #[test]
    fn canonicalize_is_idempotent(t in arb_flex_type()) {
        let once = t.canonicalize();
        let twice = once.canonicalize();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn ftv_has_no_duplicates(t in arb_flex_type()) {
        let ftv = t.ftv();
        let mut dedup = ftv.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(ftv.len(), dedup.len());
    }

    #[test]
    fn monotypes_have_no_quantifiers(t in arb_closed_mono()) {
        prop_assert!(t.is_monotype());
        prop_assert!(t.is_guarded());
        prop_assert_eq!(
            kinding::kind_of(&KindEnv::new(), &RefinedEnv::new(), &t).unwrap(),
            Kind::Mono
        );
    }

    #[test]
    fn display_parse_round_trip(t in arb_flex_type()) {
        // Free variables in the pool are Named, so printing is faithful.
        let printed = t.to_string();
        let reparsed = parse_type(&printed).unwrap();
        prop_assert!(
            t.alpha_eq(&reparsed),
            "{} reparsed as {}", printed, reparsed
        );
    }

    #[test]
    fn size_positive_and_stable_under_alpha(t in arb_closed_type()) {
        prop_assert!(t.size() >= 1);
        prop_assert_eq!(t.size(), t.canonicalize().size());
    }
}

// ------------------------------------------------------------ substitutions

proptest! {
    #[test]
    fn identity_subst_is_identity(t in arb_flex_type()) {
        prop_assert_eq!(Subst::identity().apply(&t), t);
    }

    #[test]
    fn subst_composition_law(
        t in arb_flex_type(),
        s1 in arb_ground_subst(),
        s2 in arb_ground_subst(),
    ) {
        // (s2 ∘ s1)(t) = s2(s1(t))  (Lemma G.13)
        let lhs = s2.compose(&s1).apply(&t);
        let rhs = s2.apply(&s1.apply(&t));
        prop_assert!(lhs.alpha_eq(&rhs), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn subst_preserves_alpha_classes(t in arb_flex_type(), s in arb_ground_subst()) {
        let canon = t.canonicalize();
        // Canonicalisation only renames invented vars, of which the pool
        // has none, so this is the same type; substitution must agree.
        prop_assert!(s.apply(&t).alpha_eq(&s.apply(&canon)));
    }

    #[test]
    fn ground_subst_grounds(t in arb_flex_type(), s in arb_ground_subst()) {
        // Every pool variable is mapped to a closed type, so the image is
        // closed.
        prop_assert!(s.apply(&t).ftv().is_empty());
    }

    #[test]
    fn subst_respects_kinding(t in arb_flex_type(), s in arb_ground_subst()) {
        // Lemma G.5: a well-kinded type stays well-kinded (at ⋆) after a
        // well-kinded substitution.
        let delta = KindEnv::new();
        prop_assert!(kinding::kind_of(&delta, &flex_env(), &t).is_ok());
        prop_assert!(kinding::kind_of(&delta, &RefinedEnv::new(), &s.apply(&t)).is_ok());
    }
}

// ---------------------------------------------------------------- unification

proptest! {
    /// Theorem 4 (soundness): a successful unifier equalises.
    #[test]
    fn unifier_equalises(a in arb_flex_type(), b in arb_flex_type()) {
        let delta = KindEnv::new();
        if let Ok((_, s)) = unify(&delta, &flex_env(), &a, &b) {
            prop_assert!(
                s.apply(&a).alpha_eq(&s.apply(&b)),
                "unifier {} does not equalise {} and {}", s, a, b
            );
        }
    }

    /// Theorem 5 (completeness) on instance pairs: `A` unifies with any
    /// substitution instance of itself.
    #[test]
    fn unify_succeeds_on_instances(a in arb_flex_type(), s in arb_ground_subst()) {
        let delta = KindEnv::new();
        let b = s.apply(&a);
        let r = unify(&delta, &flex_env(), &a, &b);
        prop_assert!(r.is_ok(), "{} should unify with its instance {}", a, b);
    }

    /// Theorem 5 (most generality) on instance pairs: the computed unifier
    /// factors the instantiating substitution.
    #[test]
    fn unifier_is_most_general_on_instances(a in arb_flex_type(), s in arb_ground_subst()) {
        let delta = KindEnv::new();
        let b = s.apply(&a);
        let (theta_out, mgu) = unify(&delta, &flex_env(), &a, &b).unwrap();
        // Find θ'' with θ''(mgu(v)) = s(v) for all pool variables — i.e.
        // match the tuple of images one-sidedly.
        let tuple = flex_pool()
            .into_iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(v), acc));
        let pattern = mgu.apply(&tuple);
        let target = s.apply(&tuple);
        prop_assert!(
            matches(&delta, &theta_out, &pattern, &target).is_some(),
            "mgu {} does not factor {} (pattern {}, target {})",
            mgu, s, pattern, target
        );
    }

    /// Unification is symmetric up to success.
    #[test]
    fn unify_is_symmetric(a in arb_flex_type(), b in arb_flex_type()) {
        let delta = KindEnv::new();
        let fwd = unify(&delta, &flex_env(), &a, &b).is_ok();
        let bwd = unify(&delta, &flex_env(), &b, &a).is_ok();
        prop_assert_eq!(fwd, bwd);
    }

    /// Unifying a type with itself yields an environment-preserving result.
    #[test]
    fn unify_reflexive(a in arb_flex_type()) {
        let delta = KindEnv::new();
        let (theta, s) = unify(&delta, &flex_env(), &a, &a).unwrap();
        prop_assert!(s.apply(&a).alpha_eq(&a));
        // No variable may be *promoted*; demotion is allowed (e.g.
        // unifying f0 → f0 with itself may demote nothing, but nested
        // occurrences never gain polymorphism).
        for (v, k) in theta.iter() {
            prop_assert!(k.le(flex_env().kind_of(v).unwrap()));
        }
    }

    /// Occurs check: `v` never unifies with a type strictly containing it.
    #[test]
    fn occurs_check_rejects(t in arb_flex_type()) {
        let delta = KindEnv::new();
        let v = TyVar::named("f0");
        // Ensure strict containment.
        let container = Type::arrow(Type::Var(v), t);
        let r = unify(&delta, &flex_env(), &Type::Var(v), &container);
        prop_assert!(r.is_err());
    }

    /// Mono-kinded variables never pick up quantifiers.
    #[test]
    fn mono_vars_stay_mono(t in arb_flex_type()) {
        let delta = KindEnv::new();
        let mut theta = flex_env().demoted(&[TyVar::named("f0")]);
        theta.insert(TyVar::named("m"), Kind::Mono);
        let r = unify(&delta, &theta, &Type::var("m"), &t);
        if let Ok((_, s)) = r {
            prop_assert!(
                s.apply(&Type::var("m")).is_monotype()
                    || !s.apply(&Type::var("m")).ftv().is_empty(),
                "mono var bound to polytype {}", s.apply(&Type::var("m"))
            );
        }
    }
}

// ------------------------------------------------------- one-sided matching

proptest! {
    /// `matches` is sound: the witness substitution proves the equality.
    #[test]
    fn matches_witness_is_sound(p in arb_flex_type(), t in arb_closed_type()) {
        let delta = KindEnv::new();
        if let Some(s) = matches(&delta, &flex_env(), &p, &t) {
            prop_assert!(s.apply(&p).alpha_eq(&t));
        }
    }

    /// `matches` is complete on instances.
    #[test]
    fn matches_succeeds_on_instances(p in arb_flex_type(), s in arb_ground_subst()) {
        let delta = KindEnv::new();
        let t = s.apply(&p);
        prop_assert!(
            matches(&delta, &flex_env(), &p, &t).is_some(),
            "{} should match its instance {}", p, t
        );
    }
}

// -------------------------------------------------- inference (Theorems 6/7)

/// A small generator of FreezeML terms over a fixed prelude. Most are
/// ill-typed; the well-typed ones exercise soundness and principality.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        Just(Term::var("id")),
        Just(Term::frozen("id")),
        Just(Term::var("inc")),
        Just(Term::var("choose")),
        Just(Term::var("single")),
        Just(Term::var("x")),
        Just(Term::int(1)),
        Just(Term::bool(true)),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(f, a)| Term::app(f, a)),
            2 => inner.clone().prop_map(|b| Term::lam("x", b)),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(r, b)| Term::let_("x", r, b)),
            1 => inner.clone().prop_map(Term::gen),
            1 => inner.prop_map(Term::inst),
        ]
    })
}

fn test_env() -> TypeEnv {
    let mut g = TypeEnv::new();
    g.push_str("id", "forall a. a -> a").unwrap();
    g.push_str("inc", "Int -> Int").unwrap();
    g.push_str("choose", "forall a. a -> a -> a").unwrap();
    g.push_str("single", "forall a. a -> List a").unwrap();
    g
}

/// Does the term contain any frozen variable (including the ones the
/// `$`-sugar introduces)?
fn contains_frozen(t: &Term) -> bool {
    match t {
        Term::FrozenVar(_) => true,
        Term::Var(_) | Term::Lit(_) => false,
        Term::Lam(_, b) | Term::LamAnn(_, _, b) => contains_frozen(b),
        Term::App(f, a) => contains_frozen(f) || contains_frozen(a),
        Term::Let(_, r, b) | Term::LetAnn(_, _, r, b) => contains_frozen(r) || contains_frozen(b),
        Term::TyApp(m, _) => contains_frozen(m),
    }
}

/// A counterexample found by property testing: *with* freezing, dropping
/// the value restriction is observable and can even reject programs the
/// standard system accepts. `$(id id)` has type `b → b` (demoted) under
/// the value restriction — applicable to `choose` — but generalises to
/// `∀b.b→b` in pure mode, which is not a function type.
#[test]
fn pure_mode_is_observably_different() {
    let env = test_env();
    let term = Term::app(
        Term::app(
            Term::gen(Term::app(Term::var("id"), Term::var("id"))),
            Term::var("choose"),
        ),
        Term::var("inc"),
    );
    assert!(infer_term(&env, &term, &Options::default()).is_ok());
    assert!(infer_term(&env, &term, &Options::pure_freezeml()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 6 (soundness): inferred types are well-kinded and accepted
    /// by the declarative relation.
    #[test]
    fn inferred_types_are_declaratively_derivable(term in arb_term()) {
        let env = test_env();
        let opts = Options::default();
        // Close the term: wrap free occurrences of x in a λ.
        let term = Term::lam("x", term);
        if let Ok(out) = infer_term(&env, &term, &opts) {
            let canon = out.ty.canonicalize();
            let delta: KindEnv = canon
                .ftv()
                .into_iter()
                .collect();
            prop_assert!(
                check_typing(&delta, &env, &term, &canon, &opts).unwrap(),
                "inferred {} not derivable for {}", canon, term
            );
        }
    }

    /// Theorem 7 (principality): every ground instance of the inferred
    /// type is also derivable.
    #[test]
    fn ground_instances_of_inferred_types_are_derivable(term in arb_term()) {
        let env = test_env();
        let opts = Options::default();
        let term = Term::lam("x", term);
        if let Ok(out) = infer_term(&env, &term, &opts) {
            let canon = out.ty.canonicalize();
            // Substitute Int for every free variable. This is an instance
            // of the principal type, hence derivable — *provided* the
            // variables are mono-kinded, which free residuals always are
            // or can be (⋆ instances include mono ones).
            let mut ground = canon.clone();
            for v in canon.ftv() {
                ground = ground.rename_free(&v, &Type::int());
            }
            let delta = KindEnv::new();
            prop_assert!(
                check_typing(&delta, &env, &term, &ground, &opts).unwrap(),
                "ground instance {} of {} not derivable for {}",
                ground, canon, term
            );
        }
    }

    /// Inference is deterministic up to α-equivalence.
    #[test]
    fn inference_is_deterministic(term in arb_term()) {
        let env = test_env();
        let opts = Options::default();
        let term = Term::lam("x", term);
        let a = infer_term(&env, &term, &opts);
        let b = infer_term(&env, &term, &opts);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert!(x.ty.canonicalize().alpha_eq(&y.ty.canonicalize()))
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "non-deterministic: {:?}", other),
        }
    }

    /// On *freeze-free* terms, pure mode accepts everything the standard
    /// mode accepts. (With freezing the modes are incomparable — see
    /// `pure_mode_is_observably_different` below, a counterexample this
    /// very property discovered.)
    #[test]
    fn pure_mode_is_no_stricter_without_freezing(term in arb_term()) {
        prop_assume!(!contains_frozen(&term));
        let env = test_env();
        let term = Term::lam("x", term);
        let std_ok = infer_term(&env, &term, &Options::default()).is_ok();
        let pure_ok = infer_term(&env, &term, &Options::pure_freezeml()).is_ok();
        prop_assert!(!std_ok || pure_ok, "pure mode rejected {}", term);
    }

    /// The eliminator strategy accepts everything the variable strategy
    /// accepts.
    #[test]
    fn eliminator_is_no_stricter(term in arb_term()) {
        let env = test_env();
        let term = Term::lam("x", term);
        let std_ok = infer_term(&env, &term, &Options::default()).is_ok();
        let elim_ok = infer_term(&env, &term, &Options::eliminator()).is_ok();
        prop_assert!(!std_ok || elim_ok, "eliminator mode rejected {}", term);
    }

    /// Guarded values are values (Figure 3's syntactic inclusion).
    #[test]
    fn guarded_values_are_values(term in arb_term()) {
        if term.is_guarded_value() {
            prop_assert!(term.is_value());
        }
    }
}
