//! A global symbol table: names interned once, compared and hashed as
//! `u32` indices forever after.
//!
//! Every identifier the lexer reads — term variables, type variables,
//! constructor names — is interned into one process-wide table and
//! carried through the whole stack as a [`Symbol`]: a `Copy` index whose
//! equality is an integer comparison and whose hash is one multiply.
//! This is the representation work production ML implementations take
//! for granted; before it, every `TyVar` clone bumped an `Arc`, every
//! environment lookup hashed string bytes, and every pretty-print
//! rebuilt owned `String` sets.
//!
//! Interned strings are leaked (`&'static str`), which is what lets
//! [`Symbol::as_str`] hand out a reference without holding a lock. The
//! table only ever grows, but it grows with the set of *distinct
//! identifiers the process has seen* — bounded by source text, not by
//! inference work, and a few bytes per name.
//!
//! The table is seeded with the single-letter names `a`–`z` at first
//! use, so the printer's letter supply ([`crate::types`]) starts from
//! symbols that already exist and ordering of early symbols is stable
//! across processes.

use fxhash::FxHashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned name: a `Copy` index into the global symbol table.
///
/// Equality, hashing, and `Ord` all operate on the index. `Ord` is
/// therefore *interning order*, not lexicographic order — callers that
/// need alphabetical output (only `Subst`'s `Display` does) must sort by
/// [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Table {
    map: FxHashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Table {
            map: FxHashMap::default(),
            names: Vec::with_capacity(64),
        };
        for c in b'a'..=b'z' {
            let s: &'static str = Box::leak(((c as char).to_string()).into_boxed_str());
            t.map.insert(s, t.names.len() as u32);
            t.names.push(s);
        }
        RwLock::new(t)
    })
}

impl Symbol {
    /// Intern a string, returning its symbol (idempotent).
    pub fn intern(s: &str) -> Symbol {
        {
            let t = table().read().expect("symbol table poisoned");
            if let Some(&id) = t.map.get(s) {
                return Symbol(id);
            }
        }
        let mut t = table().write().expect("symbol table poisoned");
        if let Some(&id) = t.map.get(s) {
            return Symbol(id); // raced: another thread interned it
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = t.names.len() as u32;
        t.map.insert(leaked, id);
        t.names.push(leaked);
        Symbol(id)
    }

    /// The symbol for `s` if it has ever been interned — membership
    /// tests (the printer's letter supply) without growing the table.
    pub fn lookup(s: &str) -> Option<Symbol> {
        table()
            .read()
            .expect("symbol table poisoned")
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The interned string (leaked, so no lock is held by the borrow).
    pub fn as_str(self) -> &'static str {
        table().read().expect("symbol table poisoned").names[self.0 as usize]
    }

    /// The raw table index (stable for the life of the process).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello_sym_test");
        let b = Symbol::intern("hello_sym_test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello_sym_test");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("sym_x"), Symbol::intern("sym_y"));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(Symbol::lookup("never_interned_name_xyzzy"), None);
        let s = Symbol::intern("interned_name_xyzzy");
        assert_eq!(Symbol::lookup("interned_name_xyzzy"), Some(s));
    }

    #[test]
    fn letters_are_preseeded() {
        // Single letters exist from process start, in order.
        let a = Symbol::lookup("a").expect("seeded");
        let z = Symbol::lookup("z").expect("seeded");
        assert_eq!(z.index() - a.index(), 25);
    }

    #[test]
    fn threads_agree_on_symbols() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| Symbol::intern("raced_symbol").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
