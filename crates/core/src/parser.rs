//! Parser for the ASCII surface syntax.
//!
//! ## Types
//!
//! ```text
//! type  ::= 'forall' ident+ '.' type | prod ('->' type)?
//! prod  ::= app ('*' app)*
//! app   ::= 'List' atom | 'ST' atom atom | atom
//! atom  ::= 'Int' | 'Bool' | ident | '(' type ')'
//! ```
//!
//! Lowercase identifiers are type variables; uppercase identifiers are
//! nullary constructors.
//!
//! ## Terms
//!
//! ```text
//! term  ::= 'fun' param+ '->' term
//!        |  'let' (ident | '(' ident ':' type ')') '=' term 'in' term
//!        |  op
//! param ::= ident | '(' ident ':' type ')'
//! op    ::= application chains with infix `+` (60), `::` (50, right), `++` (40)
//! app   ::= postfix+
//! postfix ::= atom '@'*                        -- explicit instantiation M@
//! atom  ::= int | 'true' | 'false' | ident
//!        |  '~' ident                          -- frozen variable ⌈x⌉
//!        |  '$' gatom                          -- generalisation $V / $A V
//!        |  '(' term ')' | '(' term ',' term ')' | '[' terms? ']'
//! gatom ::= atom | '(' term ':' type ')'
//! ```
//!
//! Infix `+`, `::`, `++`, tuples, and list literals desugar to applications
//! of the Figure 2 prelude functions `plus`, `cons`, `append`, `pair`, and
//! `nil`, keeping the core term language exactly Figure 3.

use crate::lexer::{lex, LexError, Token, TokenKind};
use crate::names::TyVar;
use crate::program::{Decl, Program, Span};
use crate::symbol::Symbol;
use crate::term::Term;
use crate::tycon::TyCon;
use crate::types::Type;
use std::fmt;

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// Byte offset of the offending token (or end of input).
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            pos: e.pos,
        }
    }
}

/// Parse a type from source text.
///
/// ```
/// use freezeml_core::parse_type;
/// let t = parse_type("forall a. a -> List a").unwrap();
/// assert_eq!(t.to_string(), "forall a. a -> List a");
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_type(src: &str) -> Result<Type, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.ty()?;
    p.expect_end()?;
    Ok(t)
}

/// Parse a term from source text.
///
/// ```
/// use freezeml_core::parse_term;
/// let t = parse_term("fun x -> poly ~x").unwrap();
/// assert_eq!(t.to_string(), "fun x -> poly ~x");
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    p.expect_end()?;
    Ok(t)
}

/// Parse a whole program — pragmas followed by `let …;;` declarations
/// (see [`crate::program`] for the grammar and semantics).
///
/// ```
/// use freezeml_core::parse_program;
/// let p = parse_program("let f = fun x -> x;;\nlet g = f 1;;").unwrap();
/// assert_eq!(p.decls.len(), 2);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    let mut pragmas = Vec::new();
    let mut decls = Vec::new();
    loop {
        match p.peek() {
            None => break,
            Some(TokenKind::Pragma(name)) => {
                let name = name.clone();
                let start = p.here();
                p.pos += 1;
                let arg_pos = p.here();
                let arg = p.ident()?;
                pragmas.push((
                    name,
                    arg.as_str().to_string(),
                    Span {
                        start,
                        end: arg_pos + arg.as_str().len(),
                    },
                ));
            }
            Some(TokenKind::Let) => {
                let start = p.here();
                p.pos += 1;
                let (name, name_span, ann) = p.top_binder()?;
                p.expect(TokenKind::Eq)?;
                let term = p.term()?;
                let semi_pos = p.here();
                p.expect(TokenKind::SemiSemi)?;
                decls.push(Decl {
                    name,
                    ann,
                    term,
                    span: Span {
                        start,
                        end: semi_pos + 2,
                    },
                    name_span,
                });
            }
            Some(t) => {
                let t = t.clone();
                return p.err(format!(
                    "expected a `let` declaration or pragma, found `{t}`"
                ));
            }
        }
    }
    Ok(Program { pragmas, decls })
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.pos)
            .unwrap_or(self.src_len)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            pos: self.here(),
        })
    }

    fn expect(&mut self, k: TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == k => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected `{k}`, found `{t}`"))
            }
            None => self.err(format!("expected `{k}`, found end of input")),
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected end of input, found `{t}`"))
            }
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = *s;
                self.pos += 1;
                Ok(s)
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected identifier, found `{t}`"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    /// A top-level declaration binder: `x`, `x : A`, or `(x : A)`.
    fn top_binder(&mut self) -> Result<(Symbol, Span, Option<Type>), ParseError> {
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let pos = self.here();
            let x = self.ident()?;
            let name_span = Span {
                start: pos,
                end: pos + x.as_str().len(),
            };
            self.expect(TokenKind::Colon)?;
            let ty = self.ty()?;
            self.expect(TokenKind::RParen)?;
            return Ok((x, name_span, Some(ty)));
        }
        let pos = self.here();
        let x = self.ident()?;
        let name_span = Span {
            start: pos,
            end: pos + x.as_str().len(),
        };
        let ann = if self.peek() == Some(&TokenKind::Colon) {
            self.pos += 1;
            Some(self.ty()?)
        } else {
            None
        };
        Ok((x, name_span, ann))
    }

    // ---------------------------------------------------------- types

    fn ty(&mut self) -> Result<Type, ParseError> {
        if self.peek() == Some(&TokenKind::Forall) {
            self.pos += 1;
            let mut vars = Vec::new();
            while let Some(TokenKind::Ident(_)) = self.peek() {
                vars.push(TyVar::from_symbol(self.ident()?));
            }
            if vars.is_empty() {
                return self.err("`forall` requires at least one type variable");
            }
            self.expect(TokenKind::Dot)?;
            let body = self.ty()?;
            Ok(Type::foralls(vars, body))
        } else {
            self.ty_arrow()
        }
    }

    fn ty_arrow(&mut self) -> Result<Type, ParseError> {
        let lhs = self.ty_prod()?;
        if self.peek() == Some(&TokenKind::Arrow) {
            self.pos += 1;
            let rhs = self.ty()?;
            Ok(Type::arrow(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> Result<Type, ParseError> {
        let mut lhs = self.ty_app()?;
        while self.peek() == Some(&TokenKind::Star) {
            self.pos += 1;
            let rhs = self.ty_app()?;
            lhs = Type::prod(lhs, rhs);
        }
        Ok(lhs)
    }

    fn ty_app(&mut self) -> Result<Type, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if s.as_str() == "List" => {
                self.pos += 1;
                let arg = self.ty_atom()?;
                Ok(Type::list(arg))
            }
            Some(TokenKind::Ident(s)) if s.as_str() == "ST" => {
                self.pos += 1;
                let s1 = self.ty_atom()?;
                let s2 = self.ty_atom()?;
                Ok(Type::st(s1, s2))
            }
            _ => self.ty_atom(),
        }
    }

    fn ty_atom(&mut self) -> Result<Type, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = *s;
                self.pos += 1;
                match s.as_str() {
                    "Int" => Ok(Type::int()),
                    "Bool" => Ok(Type::bool()),
                    "List" | "ST" => self.err(format!(
                        "type constructor `{s}` needs arguments (parenthesise)"
                    )),
                    _ if s.as_str().starts_with(|c: char| c.is_ascii_uppercase()) => {
                        Ok(Type::Con(TyCon::Other(s, 0), vec![]))
                    }
                    _ => Ok(Type::Var(TyVar::from_symbol(s))),
                }
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let t = self.ty()?;
                self.expect(TokenKind::RParen)?;
                Ok(t)
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected a type, found `{t}`"))
            }
            None => self.err("expected a type, found end of input"),
        }
    }

    // ---------------------------------------------------------- terms

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(TokenKind::Fun) => {
                self.pos += 1;
                let mut params: Vec<(Symbol, Option<Type>)> = Vec::new();
                loop {
                    match self.peek() {
                        Some(TokenKind::Ident(_)) => {
                            params.push((self.ident()?, None));
                        }
                        Some(TokenKind::LParen) => {
                            self.pos += 1;
                            let x = self.ident()?;
                            self.expect(TokenKind::Colon)?;
                            let ty = self.ty()?;
                            self.expect(TokenKind::RParen)?;
                            params.push((x, Some(ty)));
                        }
                        Some(TokenKind::Arrow) => break,
                        _ => return self.err("expected parameter or `->` in `fun`"),
                    }
                }
                if params.is_empty() {
                    return self.err("`fun` requires at least one parameter");
                }
                self.expect(TokenKind::Arrow)?;
                let body = self.term()?;
                Ok(params
                    .into_iter()
                    .rev()
                    .fold(body, |acc, (x, ann)| match ann {
                        None => Term::lam(x, acc),
                        Some(ty) => Term::lam_ann(x, ty, acc),
                    }))
            }
            Some(TokenKind::Let) => {
                self.pos += 1;
                match self.peek() {
                    Some(TokenKind::LParen) => {
                        self.pos += 1;
                        let x = self.ident()?;
                        self.expect(TokenKind::Colon)?;
                        let ty = self.ty()?;
                        self.expect(TokenKind::RParen)?;
                        self.expect(TokenKind::Eq)?;
                        let rhs = self.term()?;
                        self.expect(TokenKind::In)?;
                        let body = self.term()?;
                        Ok(Term::let_ann(x, ty, rhs, body))
                    }
                    _ => {
                        let x = self.ident()?;
                        self.expect(TokenKind::Eq)?;
                        let rhs = self.term()?;
                        self.expect(TokenKind::In)?;
                        let body = self.term()?;
                        Ok(Term::let_(x, rhs, body))
                    }
                }
            }
            _ => self.op_expr(0),
        }
    }

    /// Precedence climbing over the desugared infix operators.
    fn op_expr(&mut self, min_prec: u8) -> Result<Term, ParseError> {
        let mut lhs = self.app_expr()?;
        loop {
            let (prec, right_assoc, fun) = match self.peek() {
                Some(TokenKind::Plus) => (60, false, "plus"),
                Some(TokenKind::ColonColon) => (50, true, "cons"),
                Some(TokenKind::PlusPlus) => (40, false, "append"),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let next_min = if right_assoc { prec } else { prec + 1 };
            let rhs = self.op_expr(next_min)?;
            lhs = Term::apps(Term::var(fun), [lhs, rhs]);
        }
        Ok(lhs)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                TokenKind::Ident(_)
                    | TokenKind::Int(_)
                    | TokenKind::True
                    | TokenKind::False
                    | TokenKind::LParen
                    | TokenKind::LBracket
                    | TokenKind::Tilde
                    | TokenKind::Dollar
            )
        )
    }

    fn app_expr(&mut self) -> Result<Term, ParseError> {
        let mut head = self.postfix()?;
        while self.starts_atom() {
            let arg = self.postfix()?;
            head = Term::app(head, arg);
        }
        Ok(head)
    }

    fn postfix(&mut self) -> Result<Term, ParseError> {
        let mut t = self.atom()?;
        while self.peek() == Some(&TokenKind::At) {
            self.pos += 1;
            if self.peek() == Some(&TokenKind::LBracket) {
                // Explicit type application M@[A] (§6 extension).
                self.pos += 1;
                let ty = self.ty()?;
                self.expect(TokenKind::RBracket)?;
                t = Term::ty_app(t, ty);
            } else {
                t = Term::inst(t);
            }
        }
        Ok(t)
    }

    fn atom(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => Ok(Term::var(self.ident()?)),
            Some(TokenKind::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Term::int(n))
            }
            Some(TokenKind::True) => {
                self.pos += 1;
                Ok(Term::bool(true))
            }
            Some(TokenKind::False) => {
                self.pos += 1;
                Ok(Term::bool(false))
            }
            Some(TokenKind::Tilde) => {
                self.pos += 1;
                Ok(Term::frozen(self.ident()?))
            }
            Some(TokenKind::Dollar) => {
                self.pos += 1;
                self.gen_atom()
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let t = self.term()?;
                match self.peek() {
                    Some(TokenKind::RParen) => {
                        self.pos += 1;
                        Ok(t)
                    }
                    Some(TokenKind::Comma) => {
                        self.pos += 1;
                        let u = self.term()?;
                        self.expect(TokenKind::RParen)?;
                        Ok(Term::apps(Term::var("pair"), [t, u]))
                    }
                    Some(TokenKind::Colon) => {
                        self.err("type ascription `(M : A)` is only allowed directly under `$`")
                    }
                    _ => self.err("expected `)`, `,` or end of parenthesised term"),
                }
            }
            Some(TokenKind::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(&TokenKind::RBracket) {
                    items.push(self.term()?);
                    while self.peek() == Some(&TokenKind::Comma) {
                        self.pos += 1;
                        items.push(self.term()?);
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(items.into_iter().rev().fold(Term::var("nil"), |acc, it| {
                    Term::apps(Term::var("cons"), [it, acc])
                }))
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected a term, found `{t}`"))
            }
            None => self.err("expected a term, found end of input"),
        }
    }

    /// The operand of `$`: an atom, or a parenthesised term with an optional
    /// type ascription `$(M : A)` giving annotated generalisation `$A M`.
    fn gen_atom(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Some(&TokenKind::LParen) {
            // `$( ... )` — may contain a trailing ascription.
            self.pos += 1;
            let t = self.term()?;
            match self.peek() {
                Some(TokenKind::RParen) => {
                    self.pos += 1;
                    Ok(Term::gen(t))
                }
                Some(TokenKind::Colon) => {
                    self.pos += 1;
                    let ty = self.ty()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(Term::gen_ann(ty, t))
                }
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                    let u = self.term()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(Term::gen(Term::apps(Term::var("pair"), [t, u])))
                }
                _ => self.err("expected `)` or `:` in generalisation"),
            }
        } else {
            let t = self.atom()?;
            Ok(Term::gen(t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_types() {
        for (src, expect) in [
            ("forall a. List a -> a", "forall a. List a -> a"),
            (
                "forall a b. (a -> b) -> List a -> List b",
                "forall a b. (a -> b) -> List a -> List b",
            ),
            (
                "(forall a. a -> a) -> Int * Bool",
                "(forall a. a -> a) -> Int * Bool",
            ),
            (
                "forall a. (forall s. ST s a) -> a",
                "forall a. (forall s. ST s a) -> a",
            ),
            ("forall b a. a -> b -> a * b", "forall b a. a -> b -> a * b"),
            ("List (forall a. a -> a)", "List (forall a. a -> a)"),
        ] {
            let t = parse_type(src).unwrap();
            assert_eq!(t.to_string(), expect, "source: {src}");
        }
    }

    #[test]
    fn arrow_is_right_assoc() {
        let t = parse_type("a -> b -> c").unwrap();
        assert_eq!(
            t,
            Type::arrow(Type::var("a"), Type::arrow(Type::var("b"), Type::var("c")))
        );
    }

    #[test]
    fn type_round_trips_through_display() {
        for src in [
            "forall a b. a -> b -> b",
            "(forall a. a -> a) -> forall b. b -> b",
            "List (Int * Bool) -> ST s Int",
            "forall a. (forall s. ST s a) -> a",
        ] {
            let t = parse_type(src).unwrap();
            let t2 = parse_type(&t.to_string()).unwrap();
            assert!(t.alpha_eq(&t2), "{src} printed as {t}");
        }
    }

    #[test]
    fn parses_lambda_forms() {
        assert_eq!(
            parse_term("fun x y -> y").unwrap(),
            Term::lam("x", Term::lam("y", Term::var("y")))
        );
        let t = parse_term("fun (x : forall a. a -> a) -> x x").unwrap();
        match t {
            Term::LamAnn(_, ann, body) => {
                assert_eq!(ann.to_string(), "forall a. a -> a");
                assert_eq!(*body, Term::app(Term::var("x"), Term::var("x")));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_freeze_gen_inst() {
        assert_eq!(parse_term("~id").unwrap(), Term::frozen("id"));
        // $id desugars to let $n = id in ~$n
        match parse_term("$id").unwrap() {
            Term::Let(x, rhs, body) => {
                assert_eq!(*rhs, Term::var("id"));
                assert_eq!(*body, Term::FrozenVar(x));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        // (head ids)@ desugars to let $n = head ids in $n
        match parse_term("(head ids)@").unwrap() {
            Term::Let(x, rhs, body) => {
                assert_eq!(*rhs, Term::app(Term::var("head"), Term::var("ids")));
                assert_eq!(*body, Term::Var(x));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_annotated_gen() {
        match parse_term("$(fun x -> x : forall a. a -> a)").unwrap() {
            Term::LetAnn(x, ann, _, body) => {
                assert_eq!(ann.to_string(), "forall a. a -> a");
                assert_eq!(*body, Term::FrozenVar(x));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn ascription_outside_gen_is_rejected() {
        assert!(parse_term("(x : Int)").is_err());
    }

    #[test]
    fn parses_let_forms() {
        let t = parse_term("let f = fun x -> x in ~f").unwrap();
        assert_eq!(
            t,
            Term::let_("f", Term::lam("x", Term::var("x")), Term::frozen("f"))
        );
        let t = parse_term("let (f : forall a. a -> a) = ~id in f 3").unwrap();
        match t {
            Term::LetAnn(_, ann, rhs, _) => {
                assert_eq!(ann.to_string(), "forall a. a -> a");
                assert_eq!(*rhs, Term::frozen("id"));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_operators() {
        // f 42 + 1  ≡  plus (f 42) 1
        let t = parse_term("f 42 + 1").unwrap();
        assert_eq!(
            t,
            Term::apps(
                Term::var("plus"),
                [Term::app(Term::var("f"), Term::int(42)), Term::int(1)]
            )
        );
    }

    #[test]
    fn cons_is_right_assoc() {
        // a :: b :: c ≡ cons a (cons b c)
        let t = parse_term("a :: b :: c").unwrap();
        assert_eq!(
            t,
            Term::apps(
                Term::var("cons"),
                [
                    Term::var("a"),
                    Term::apps(Term::var("cons"), [Term::var("b"), Term::var("c")])
                ]
            )
        );
    }

    #[test]
    fn lists_and_tuples_desugar() {
        assert_eq!(parse_term("[]").unwrap(), Term::var("nil"));
        assert_eq!(
            parse_term("[x]").unwrap(),
            Term::apps(Term::var("cons"), [Term::var("x"), Term::var("nil")])
        );
        assert_eq!(
            parse_term("(x, y)").unwrap(),
            Term::apps(Term::var("pair"), [Term::var("x"), Term::var("y")])
        );
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_term("x y )").is_err());
        assert!(parse_type("Int Int").is_err());
    }

    #[test]
    fn frozen_requires_identifier() {
        assert!(parse_term("~3").is_err());
        assert!(parse_term("~(f x)").is_err());
    }

    #[test]
    fn at_after_var_and_paren() {
        // head ids @ — `@` binds to the nearest atom, `ids` here.
        let t = parse_term("head ids@").unwrap();
        match t {
            Term::App(f, arg) => {
                assert_eq!(*f, Term::var("head"));
                assert!(matches!(*arg, Term::Let(_, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
