//! Type constructors `D` (Figure 3): `Int | Bool | List | → | × | ST | …`.

use crate::symbol::Symbol;
use std::fmt;

/// A type constructor with a fixed arity.
///
/// The constructors used by the paper's examples are built in; arbitrary
/// additional constructors can be introduced with [`TyCon::other`].
/// `Copy` — a user-defined constructor carries an interned [`Symbol`],
/// not an owned string, so cloning a constructor on the inference hot
/// path is free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TyCon {
    /// `Int`, arity 0.
    Int,
    /// `Bool`, arity 0.
    Bool,
    /// `List`, arity 1.
    List,
    /// The function arrow `→`, arity 2.
    Arrow,
    /// The product `×`, arity 2.
    Prod,
    /// The state-thread constructor `ST`, arity 2 (used by `runST`/`argST`).
    St,
    /// A user-defined constructor with the given name and arity.
    Other(Symbol, usize),
}

impl TyCon {
    /// Introduce a user-defined constructor.
    pub fn other(name: impl AsRef<str>, arity: usize) -> Self {
        TyCon::Other(Symbol::intern(name.as_ref()), arity)
    }

    /// `arity(D)` — the number of type arguments the constructor takes.
    pub fn arity(&self) -> usize {
        match self {
            TyCon::Int | TyCon::Bool => 0,
            TyCon::List => 1,
            TyCon::Arrow | TyCon::Prod | TyCon::St => 2,
            TyCon::Other(_, n) => *n,
        }
    }

    /// The constructor's surface name.
    pub fn name(&self) -> &'static str {
        match self {
            TyCon::Int => "Int",
            TyCon::Bool => "Bool",
            TyCon::List => "List",
            TyCon::Arrow => "->",
            TyCon::Prod => "*",
            TyCon::St => "ST",
            TyCon::Other(s, _) => s.as_str(),
        }
    }
}

impl fmt::Display for TyCon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(TyCon::Int.arity(), 0);
        assert_eq!(TyCon::Bool.arity(), 0);
        assert_eq!(TyCon::List.arity(), 1);
        assert_eq!(TyCon::Arrow.arity(), 2);
        assert_eq!(TyCon::Prod.arity(), 2);
        assert_eq!(TyCon::St.arity(), 2);
        assert_eq!(TyCon::other("Tree", 3).arity(), 3);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(TyCon::List.name(), "List");
        assert_eq!(TyCon::other("Tree", 1).name(), "Tree");
        assert_eq!(TyCon::Arrow.to_string(), "->");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(TyCon::other("T", 1), TyCon::other("T", 1));
        assert_ne!(TyCon::other("T", 1), TyCon::other("T", 2));
        assert_ne!(TyCon::Int, TyCon::Bool);
    }
}
