//! Pretty-printing in the ASCII surface syntax (§6: Links renders `⌈x⌉` as
//! `~x`; we additionally render `∀` as `forall`, `×` as `*`).
//!
//! Invented variables (`%3`, `!7`) are given readable letter names on the
//! fly — binders and free invented variables alike — choosing letters that
//! do not clash with any source-named variable in the same type. Printing is
//! therefore stable under α-renaming of invented binders.
//!
//! The grammar printed here is exactly the grammar accepted by
//! [`crate::parser`], so `parse_type(ty.to_string())` round-trips (up to
//! α-equivalence and canonical naming); this is checked by property tests.

use crate::names::TyVar;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::tycon::TyCon;
use crate::types::{collect_named, letter_supply, Type};
use fxhash::{FxHashMap, FxHashSet};
use std::fmt;

/// Format a type (used by `Type`'s `Display` impl).
pub fn fmt_type(ty: &Type, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut taken = FxHashSet::default();
    collect_named(ty, &mut taken);
    let mut names = FxHashMap::default();
    let mut supply = letter_supply(taken);
    assign_names(ty, &mut names, &mut supply);
    fmt_ty(ty, 1, &names, f)
}

fn assign_names(
    ty: &Type,
    names: &mut FxHashMap<TyVar, Symbol>,
    supply: &mut impl Iterator<Item = Symbol>,
) {
    match ty {
        Type::Var(a) => {
            if !a.is_named() && !names.contains_key(a) {
                names.insert(*a, supply.next().expect("infinite supply"));
            }
        }
        Type::Con(_, args) => args.iter().for_each(|t| assign_names(t, names, supply)),
        Type::Forall(a, body) => {
            if !a.is_named() && !names.contains_key(a) {
                names.insert(*a, supply.next().expect("infinite supply"));
            }
            assign_names(body, names, supply);
        }
    }
}

fn fmt_var(a: &TyVar, names: &FxHashMap<TyVar, Symbol>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match a.name() {
        Some(n) => f.write_str(n),
        None => match names.get(a) {
            Some(s) => f.write_str(s.as_str()),
            None => write!(f, "{a}"),
        },
    }
}

/// Precedence levels: 1 = forall/arrow position, 2 = product operand,
/// 3 = constructor-application argument position (atoms only).
fn fmt_ty(
    ty: &Type,
    prec: u8,
    names: &FxHashMap<TyVar, Symbol>,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match ty {
        Type::Var(a) => fmt_var(a, names, f),
        Type::Forall(_, _) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            write!(f, "forall")?;
            let mut t = ty;
            while let Type::Forall(a, body) = t {
                write!(f, " ")?;
                fmt_var(a, names, f)?;
                t = body;
            }
            write!(f, ". ")?;
            fmt_ty(t, 1, names, f)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Con(TyCon::Arrow, args) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_ty(&args[0], 2, names, f)?;
            write!(f, " -> ")?;
            fmt_ty(&args[1], 1, names, f)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Con(TyCon::Prod, args) => {
            if prec > 2 {
                write!(f, "(")?;
            }
            fmt_ty(&args[0], 3, names, f)?;
            write!(f, " * ")?;
            fmt_ty(&args[1], 3, names, f)?;
            if prec > 2 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Con(c, args) if args.is_empty() => write!(f, "{}", c.name()),
        Type::Con(c, args) => {
            if prec > 3 {
                write!(f, "(")?;
            }
            write!(f, "{}", c.name())?;
            for a in args {
                write!(f, " ")?;
                fmt_ty(a, 4, names, f)?;
            }
            if prec > 3 {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

/// Format a term (used by `Term`'s `Display` impl).
pub fn fmt_term(t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    fmt_tm(t, 0, f)
}

/// Precedence: 0 = open (let/fun bodies), 1 = application head/argument
/// context requires atoms for complex terms.
fn fmt_tm(t: &Term, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(x) => write!(f, "{x}"),
        Term::FrozenVar(x) => write!(f, "~{x}"),
        Term::Lit(l) => write!(f, "{l}"),
        Term::Lam(x, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "fun {x} -> ")?;
            fmt_tm(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::LamAnn(x, ann, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "fun ({x} : {ann}) -> ")?;
            fmt_tm(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::App(func, arg) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_tm(func, 1, f)?;
            write!(f, " ")?;
            fmt_tm(arg, 2, f)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::Let(x, rhs, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "let {x} = ")?;
            fmt_tm(rhs, 0, f)?;
            write!(f, " in ")?;
            fmt_tm(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::TyApp(m, ty) => {
            fmt_tm(m, 2, f)?;
            write!(f, "@[{ty}]")
        }
        Term::LetAnn(x, ann, rhs, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "let ({x} : {ann}) = ")?;
            fmt_tm(rhs, 0, f)?;
            write!(f, " in ")?;
            fmt_tm(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::TyVar;

    fn fa(vars: &[&str], body: Type) -> Type {
        Type::foralls(vars.iter().map(TyVar::named), body)
    }

    #[test]
    fn simple_types() {
        assert_eq!(Type::int().to_string(), "Int");
        assert_eq!(
            Type::arrow(Type::int(), Type::bool()).to_string(),
            "Int -> Bool"
        );
        assert_eq!(Type::list(Type::int()).to_string(), "List Int");
        assert_eq!(
            Type::prod(Type::int(), Type::bool()).to_string(),
            "Int * Bool"
        );
    }

    #[test]
    fn arrow_right_assoc() {
        let t = Type::arrow(Type::int(), Type::arrow(Type::int(), Type::int()));
        assert_eq!(t.to_string(), "Int -> Int -> Int");
        let u = Type::arrow(Type::arrow(Type::int(), Type::int()), Type::int());
        assert_eq!(u.to_string(), "(Int -> Int) -> Int");
    }

    #[test]
    fn forall_collects_binders() {
        let t = fa(&["a", "b"], Type::arrow(Type::var("a"), Type::var("b")));
        assert_eq!(t.to_string(), "forall a b. a -> b");
    }

    #[test]
    fn nested_forall_parenthesised() {
        let id = fa(&["a"], Type::arrow(Type::var("a"), Type::var("a")));
        let t = Type::arrow(id.clone(), id.clone());
        // The right-hand side of an arrow needs no parentheses.
        assert_eq!(t.to_string(), "(forall a. a -> a) -> forall a. a -> a");
        assert_eq!(Type::list(id).to_string(), "List (forall a. a -> a)");
    }

    #[test]
    fn invented_vars_get_letters() {
        let v = TyVar::fresh();
        let t = Type::arrow(Type::Var(v), Type::Var(v));
        assert_eq!(t.to_string(), "a -> a");
        // Letters avoid clashes with named variables.
        let w = TyVar::fresh();
        let u = Type::arrow(Type::var("a"), Type::Var(w));
        assert_eq!(u.to_string(), "a -> b");
    }

    #[test]
    fn invented_binders_get_letters() {
        let v = TyVar::fresh();
        let t = Type::Forall(v, Box::new(Type::arrow(Type::Var(v), Type::Var(v))));
        assert_eq!(t.to_string(), "forall a. a -> a");
    }

    #[test]
    fn terms_print_in_surface_syntax() {
        let t = Term::lam("x", Term::app(Term::var("f"), Term::frozen("x")));
        assert_eq!(t.to_string(), "fun x -> f ~x");
        let l = Term::let_("y", Term::int(1), Term::var("y"));
        assert_eq!(l.to_string(), "let y = 1 in y");
        let app2 = Term::apps(Term::var("f"), [Term::var("x"), Term::var("y")]);
        assert_eq!(app2.to_string(), "f x y");
        let nested = Term::app(Term::var("f"), Term::app(Term::var("g"), Term::var("x")));
        assert_eq!(nested.to_string(), "f (g x)");
    }

    #[test]
    fn annotated_forms() {
        let t = Term::lam_ann(
            "x",
            fa(&["a"], Type::arrow(Type::var("a"), Type::var("a"))),
            Term::var("x"),
        );
        assert_eq!(t.to_string(), "fun (x : forall a. a -> a) -> x");
        let l = Term::let_ann("y", Type::int(), Term::int(1), Term::var("y"));
        assert_eq!(l.to_string(), "let (y : Int) = 1 in y");
    }

    #[test]
    fn st_prints_applied() {
        let t = Type::st(Type::var("s"), Type::int());
        assert_eq!(t.to_string(), "ST s Int");
        let u = Type::list(Type::st(Type::var("s"), Type::int()));
        assert_eq!(u.to_string(), "List (ST s Int)");
    }
}
