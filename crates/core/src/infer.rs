//! The type inference algorithm (Figure 16) — an extension of Algorithm W
//! that is sound (Theorem 6), complete, and principal (Theorem 7).
//!
//! `infer(∆, Θ, Γ, M)` returns `(Θ′, θ, A)` with `∆ ⊢ θ : Θ ⇒ Θ′` and
//! `∆, Θ′; θ(Γ) ⊢ M : A`; we additionally return a [`TypedTerm`]
//! derivation tree for the translation to System F (Figure 11).
//!
//! The cases follow the paper line by line:
//!
//! * **frozen variables** are looked up verbatim;
//! * **variables** have their top-level quantifiers instantiated with fresh
//!   `⋆`-kinded flexible variables;
//! * **unannotated λ** binds its parameter to a fresh `•`-kinded flexible
//!   variable — parameters are never guessed polymorphic;
//! * **let** generalises guarded values over `∆′′′ = ftv(A) − ∆ − ftv(θ₁)`;
//!   for non-values the same variables are instead *demoted* to kind `•`,
//!   realising the value restriction's monomorphic instantiation (§3.2);
//! * **annotated let** `split`s its annotation, scopes the bound variables
//!   into the right-hand side, and checks that none of them escape.

use crate::env::{KindEnv, RefinedEnv, TypeEnv};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::kinding;
use crate::names::TyVar;
use crate::options::{InstantiationStrategy, Options};
use crate::parser::ParseError;
use crate::scope::{split, well_scoped};
use crate::subst::Subst;
use crate::term::Term;
use crate::typed::{TypedNode, TypedTerm};
use crate::types::Type;
use crate::unify::unify;
use std::fmt;

/// The result of a top-level inference run.
#[derive(Clone, Debug)]
pub struct InferOutput {
    /// The inferred (principal) type, with the final substitution applied.
    pub ty: Type,
    /// The derivation tree, fully resolved.
    pub typed: TypedTerm,
    /// The residual flexible environment `Θ′`.
    pub theta: RefinedEnv,
    /// The final composed substitution.
    pub subst: Subst,
}

/// The core algorithm: `infer(∆, Θ, Γ, M) = (Θ′, θ, A)` plus the derivation.
///
/// Preconditions (checked by the public drivers, maintained by recursion):
/// `∆, Θ ⊢ Γ` and `∆ ⊩ M`.
///
/// # Errors
///
/// Any [`TypeError`]; inference is complete, so an error means the program
/// has no type (Theorem 7).
pub fn infer(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    term: &Term,
    opts: &Options,
) -> Result<(RefinedEnv, Subst, Type, TypedTerm), TypeError> {
    // One rule, one function. Besides mirroring the paper's rule-by-rule
    // presentation, the split keeps the recursion frame small: debug
    // builds give a function one frame holding every match arm's
    // temporaries, and with all eight rules inline that frame was large
    // enough to overflow a default 2 MiB test-thread stack on ~64-deep
    // terms (deeply nested application *arguments* cannot be flattened
    // away — only the spine can, see `infer_app_spine`).
    match term {
        Term::FrozenVar(x) => infer_frozen_var(theta, gamma, x),
        Term::Var(x) => infer_var(theta, gamma, x),
        Term::Lit(l) => infer_lit(theta, l),
        Term::Lam(x, body) => infer_lam(delta, theta, gamma, x, body, opts),
        Term::LamAnn(x, ann, body) => infer_lam_ann(delta, theta, gamma, x, ann, body, opts),
        Term::App(_, _) => infer_app_spine(delta, theta, gamma, term, opts),
        Term::Let(x, rhs, body) => infer_let(delta, theta, gamma, x, rhs, body, opts),
        Term::TyApp(m, arg) => infer_ty_app(delta, theta, gamma, m, arg, opts),
        Term::LetAnn(x, ann, rhs, body) => {
            infer_let_ann(delta, theta, gamma, x, ann, rhs, body, opts)
        }
    }
}

type Judgement = Result<(RefinedEnv, Subst, Type, TypedTerm), TypeError>;

/// infer(∆, Θ, Γ, ⌈x⌉) = (Θ, ι, Γ(x)).
#[inline(never)]
fn infer_frozen_var(theta: &RefinedEnv, gamma: &TypeEnv, x: &crate::names::Var) -> Judgement {
    let ty = gamma.lookup(x).cloned().ok_or(TypeError::UnboundVar(*x))?;
    let typed = TypedTerm {
        ty: ty.clone(),
        node: TypedNode::FrozenVar { name: *x },
    };
    Ok((theta.clone(), Subst::identity(), ty, typed))
}

/// infer(∆, Θ, Γ, x): instantiate ∀ā.H with fresh b̄ : ⋆.
#[inline(never)]
fn infer_var(theta: &RefinedEnv, gamma: &TypeEnv, x: &crate::names::Var) -> Judgement {
    let scheme = gamma.lookup(x).cloned().ok_or(TypeError::UnboundVar(*x))?;
    let (vars, h) = scheme.split_foralls();
    let mut theta1 = theta.clone();
    let mut inst = Vec::with_capacity(vars.len());
    for a in &vars {
        let b = TyVar::fresh();
        theta1.insert(b, Kind::Poly);
        inst.push((*a, Type::Var(b)));
    }
    let ty = Subst::from_pairs(inst.clone()).apply(h);
    let typed = TypedTerm {
        ty: ty.clone(),
        node: TypedNode::Var {
            name: *x,
            scheme,
            inst,
        },
    };
    Ok((theta1, Subst::identity(), ty, typed))
}

#[inline(never)]
fn infer_lit(theta: &RefinedEnv, l: &crate::term::Lit) -> Judgement {
    let ty = l.ty();
    let typed = TypedTerm {
        ty: ty.clone(),
        node: TypedNode::Lit { lit: *l },
    };
    Ok((theta.clone(), Subst::identity(), ty, typed))
}

/// infer(∆, Θ, Γ, λx.M): fresh a : •; decompose θ[a ↦ S].
#[inline(never)]
fn infer_lam(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    x: &crate::names::Var,
    body: &Term,
    opts: &Options,
) -> Judgement {
    let a = TyVar::fresh();
    let theta_in = theta.inserted(a, Kind::Mono);
    let gamma_in = gamma.extended(*x, Type::Var(a));
    let (theta1, s, bty, tbody) = infer(delta, &theta_in, &gamma_in, body, opts)?;
    let param_ty = s.image_of(&a);
    let s_out = s.without(&a);
    let ty = Type::arrow(param_ty.clone(), bty);
    let typed = TypedTerm {
        ty: ty.clone(),
        node: TypedNode::Lam {
            param: *x,
            param_ty,
            body: Box::new(tbody),
        },
    };
    Ok((theta1, s_out, ty, typed))
}

/// infer(∆, Θ, Γ, λ(x:A).M).
#[inline(never)]
fn infer_lam_ann(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    x: &crate::names::Var,
    ann: &Type,
    body: &Term,
    opts: &Options,
) -> Judgement {
    let gamma_in = gamma.extended(*x, ann.clone());
    let (theta1, s, bty, tbody) = infer(delta, theta, &gamma_in, body, opts)?;
    let ty = Type::arrow(ann.clone(), bty);
    let typed = TypedTerm {
        ty: ty.clone(),
        node: TypedNode::LamAnn {
            param: *x,
            ann: ann.clone(),
            body: Box::new(tbody),
        },
    };
    Ok((theta1, s, ty, typed))
}

/// infer(∆, Θ, Γ, M N): unify θ₂(A′) with A → b for fresh b : ⋆.
///
/// Application spines are flattened and processed iteratively: a chain
/// `M N₁ … Nₖ` is k nested `App` nodes, and recursing into the function
/// position would use k stack frames. The loop unfolds the recursion
/// exactly (same fresh-variable draw order, same substitution
/// composition), so stack use is constant in the spine length.
#[inline(never)]
fn infer_app_spine(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    term: &Term,
    opts: &Options,
) -> Judgement {
    let mut head = term;
    let mut args = Vec::new();
    while let Term::App(f, a) = head {
        args.push(a.as_ref());
        head = f;
    }
    args.reverse();

    // θ₁, A′ for the spine head.
    let (mut theta_cur, mut s_acc, mut fty, mut tf) = infer(delta, theta, gamma, head, opts)?;

    for arg in args {
        let gamma_cur = s_acc.apply_env(gamma);
        let (theta2, s2, aty, ta) = infer(delta, &theta_cur, &gamma_cur, arg, opts)?;
        fty = s2.apply(&fty);
        tf.apply_subst(&s2);
        let mut theta2 = theta2;

        // Eliminator instantiation (§3.2): implicitly instantiate a
        // quantified head before matching it against `A → b`.
        if opts.instantiation == InstantiationStrategy::Eliminator {
            if let Type::Forall(_, _) = fty {
                let (vars, h) = fty.split_foralls();
                let mut inst = Vec::with_capacity(vars.len());
                for a in &vars {
                    let b = TyVar::fresh();
                    theta2.insert(b, Kind::Poly);
                    inst.push((*a, Type::Var(b)));
                }
                let inst_ty = Subst::from_pairs(inst.clone()).apply(h);
                tf = TypedTerm {
                    ty: inst_ty.clone(),
                    node: TypedNode::ImplicitInst {
                        inner: Box::new(tf),
                        inst,
                    },
                };
                fty = inst_ty;
            }
        }

        let b = TyVar::fresh();
        let theta2b = theta2.inserted(b, Kind::Poly);
        let expected = Type::arrow(aty, Type::Var(b));
        let (theta3, s3_all) = unify(delta, &theta2b, &fty, &expected)?;
        let bty = s3_all.image_of(&b);
        let s3 = s3_all.without(&b);
        s_acc = s3.compose(&s2).compose(&s_acc);
        theta_cur = theta3;
        tf = TypedTerm {
            ty: bty.clone(),
            node: TypedNode::App {
                func: Box::new(tf),
                arg: Box::new(ta),
            },
        };
        fty = bty;
    }
    Ok((theta_cur, s_acc, fty, tf))
}

/// infer(∆, Θ, Γ, let x = M in N).
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn infer_let(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    x: &crate::names::Var,
    rhs: &Term,
    body: &Term,
    opts: &Options,
) -> Judgement {
    let (theta1, s1, aty, trhs) = infer(delta, theta, gamma, rhs, opts)?;
    // ∆′ = ftv(θ₁) − ∆, relative to the incoming domain Θ.
    let delta_prime: Vec<TyVar> = s1
        .range_ftv(theta)
        .into_iter()
        .filter(|v| !delta.contains(v))
        .collect();
    // (∆′′, ∆′′′) = gen((∆, ∆′), A, M).
    let d3: Vec<TyVar> = aty
        .ftv()
        .into_iter()
        .filter(|v| !delta.contains(v) && !delta_prime.contains(v))
        .collect();
    let gval = rhs.is_gval(opts);
    let d2: Vec<TyVar> = if gval { d3.clone() } else { Vec::new() };
    // Θ′₁ = demote(•, Θ₁, ∆′′′): under the value restriction the
    // ungeneralised variables become monomorphic.
    let theta1p = theta1.demoted(&d3);
    let theta_in = theta1p.minus(&d2);
    let bound_ty = Type::foralls(d2.clone(), aty);
    let gamma_in = s1.apply_env(gamma).extended(*x, bound_ty.clone());
    let (theta2, s2, bty, tbody) = infer(delta, &theta_in, &gamma_in, body, opts)?;
    let s_out = s2.compose(&s1);
    let typed = TypedTerm {
        ty: bty.clone(),
        node: TypedNode::Let {
            name: *x,
            gen_vars: d2,
            mono_vars: if gval { Vec::new() } else { d3 },
            bound_ty,
            rhs_gval: gval,
            rhs: Box::new(trhs),
            body: Box::new(tbody),
        },
    };
    Ok((theta2, s_out, bty, typed))
}

/// Explicit type application M@[A] (§6 extension): instantiate the
/// outermost quantifier of M's type with A. The argument's kinding
/// (∆ ⊢ A : ⋆) is established by well-scopedness.
#[inline(never)]
fn infer_ty_app(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    m: &Term,
    arg: &Type,
    opts: &Options,
) -> Judgement {
    let (theta1, s1, mty, tm) = infer(delta, theta, gamma, m, opts)?;
    match mty {
        Type::Forall(a, body) => {
            let ty = body.rename_free(&a, arg);
            let typed = TypedTerm {
                ty: ty.clone(),
                node: TypedNode::TyApp {
                    inner: Box::new(tm),
                    bound: a,
                    arg: arg.clone(),
                },
            };
            Ok((theta1, s1, ty, typed))
        }
        other => Err(TypeError::CannotTypeApply { ty: other }),
    }
}

/// infer(∆, Θ, Γ, let (x:A) = M in N).
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn infer_let_ann(
    delta: &KindEnv,
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    x: &crate::names::Var,
    ann: &Type,
    rhs: &Term,
    body: &Term,
    opts: &Options,
) -> Judgement {
    let (split_vars, a_prime) = split(ann, rhs, opts);
    let delta2 = delta.extended(split_vars.clone())?;
    let (theta1, s1, a1, trhs) = infer(&delta2, theta, gamma, rhs, opts)?;
    let (theta2, s2p) = unify(&delta2, &theta1, &a_prime, &a1)?;
    let s2 = s2p.compose(&s1);
    // assert ftv(θ₂) # ∆′ — annotation variables must not escape.
    let escaping: Vec<TyVar> = s2
        .range_ftv(theta)
        .into_iter()
        .filter(|v| split_vars.contains(v))
        .collect();
    if !escaping.is_empty() {
        return Err(TypeError::AnnotationEscape { vars: escaping });
    }
    let gamma_in = s2.apply_env(gamma).extended(*x, ann.clone());
    let (theta3, s3, bty, tbody) = infer(delta, &theta2, &gamma_in, body, opts)?;
    let s_out = s3.compose(&s2);
    let typed = TypedTerm {
        ty: bty.clone(),
        node: TypedNode::LetAnn {
            name: *x,
            ann: ann.clone(),
            split_vars,
            rhs_gval: rhs.is_gval(opts),
            rhs: Box::new(trhs),
            body: Box::new(tbody),
        },
    };
    Ok((theta3, s_out, bty, typed))
}

/// Infer the type of a closed-context term: checks well-scopedness and
/// environment formation, runs [`infer`] with empty `∆`/`Θ`, and resolves
/// the derivation with the final substitution.
///
/// # Errors
///
/// Any [`TypeError`].
pub fn infer_term(gamma: &TypeEnv, term: &Term, opts: &Options) -> Result<InferOutput, TypeError> {
    let delta = KindEnv::new();
    let theta0 = RefinedEnv::new();
    well_scoped(&delta, term, opts)?;
    kinding::check_env(&delta, &theta0, gamma)?;
    let (theta, subst, ty, mut typed) = infer(&delta, &theta0, gamma, term, opts)?;
    typed.apply_subst(&subst);
    let ty = subst.apply(&ty);
    Ok(InferOutput {
        ty,
        typed,
        theta,
        subst,
    })
}

/// An error from [`infer_program`]: either a parse error or a type error.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgramError {
    /// The source text did not parse.
    Parse(ParseError),
    /// The program is ill-scoped or ill-typed.
    Type(TypeError),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Parse(e) => write!(f, "{e}"),
            ProgramError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<ParseError> for ProgramError {
    fn from(e: ParseError) -> Self {
        ProgramError::Parse(e)
    }
}

impl From<TypeError> for ProgramError {
    fn from(e: TypeError) -> Self {
        ProgramError::Type(e)
    }
}

/// Parse and infer, returning the canonicalised principal type — leftover
/// flexible variables are renamed to `a, b, c, …` exactly as Figure 1
/// prints them.
///
/// ```
/// use freezeml_core::{infer_program, Options, TypeEnv};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut env = TypeEnv::new();
/// env.push_str("choose", "forall a. a -> a -> a")?;
/// env.push_str("id", "forall a. a -> a")?;
/// let ty = infer_program(&env, "choose id", &Options::default())?;
/// assert_eq!(ty.to_string(), "(a -> a) -> a -> a");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// A [`ProgramError`] wrapping the parse or type error.
pub fn infer_program(gamma: &TypeEnv, src: &str, opts: &Options) -> Result<Type, ProgramError> {
    let term = crate::parser::parse_term(src)?;
    let out = infer_term(gamma, &term, opts)?;
    Ok(out.ty.canonicalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> TypeEnv {
        let mut g = TypeEnv::new();
        for (name, ty) in [
            ("id", "forall a. a -> a"),
            ("ids", "List (forall a. a -> a)"),
            ("choose", "forall a. a -> a -> a"),
            ("head", "forall a. List a -> a"),
            ("single", "forall a. a -> List a"),
            ("auto", "(forall a. a -> a) -> forall a. a -> a"),
            ("auto'", "forall b. (forall a. a -> a) -> b -> b"),
            ("poly", "(forall a. a -> a) -> Int * Bool"),
            ("inc", "Int -> Int"),
            ("plus", "Int -> Int -> Int"),
            ("nil", "forall a. List a"),
        ] {
            g.push_str(name, ty).unwrap();
        }
        g
    }

    fn ty_of(src: &str) -> Result<String, ProgramError> {
        infer_program(&env(), src, &Options::default()).map(|t| t.to_string())
    }

    #[test]
    fn frozen_variable_keeps_scheme() {
        assert_eq!(ty_of("~id").unwrap(), "forall a. a -> a");
    }

    #[test]
    fn plain_variable_instantiates() {
        assert_eq!(ty_of("id").unwrap(), "a -> a");
    }

    #[test]
    fn lambda_infers_monotype_param() {
        assert_eq!(ty_of("fun x -> x").unwrap(), "a -> a");
        assert_eq!(ty_of("fun x y -> y").unwrap(), "a -> b -> b");
    }

    #[test]
    fn application_works() {
        assert_eq!(ty_of("inc 41").unwrap(), "Int");
        assert_eq!(ty_of("id 41").unwrap(), "Int");
    }

    #[test]
    fn choose_id_specialises() {
        // A2: choose id : (a → a) → (a → a)
        assert_eq!(ty_of("choose id").unwrap(), "(a -> a) -> a -> a");
        // A2•: choose ⌈id⌉ keeps the polytype.
        assert_eq!(
            ty_of("choose ~id").unwrap(),
            "(forall a. a -> a) -> forall a. a -> a"
        );
    }

    #[test]
    fn generalisation_operator() {
        assert_eq!(ty_of("$(fun x -> x)").unwrap(), "forall a. a -> a");
        assert_eq!(ty_of("poly $(fun x -> x)").unwrap(), "Int * Bool");
        assert_eq!(ty_of("poly ~id").unwrap(), "Int * Bool");
    }

    #[test]
    fn auto_requires_frozen_argument() {
        assert!(ty_of("auto id").is_err());
        assert_eq!(ty_of("auto ~id").unwrap(), "forall a. a -> a");
    }

    #[test]
    fn instantiation_operator() {
        // head ids : ∀a.a→a, must be explicitly instantiated to apply it.
        assert_eq!(ty_of("head ids").unwrap(), "forall a. a -> a");
        assert!(ty_of("head ids 3").is_err());
        assert_eq!(ty_of("(head ids)@ 3").unwrap(), "Int");
    }

    #[test]
    fn unannotated_lambda_cannot_be_polymorphic() {
        // bad = λf.(f 42, f True) — f gets a monotype.
        let mut g = env();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        let r = infer_program(&g, "fun f -> (f 42, f true)", &Options::default());
        assert!(r.is_err());
        // With an annotation it works (B1).
        let r2 = infer_program(
            &g,
            "fun (f : forall a. a -> a) -> (f 42, f true)",
            &Options::default(),
        );
        assert_eq!(r2.unwrap().to_string(), "(forall a. a -> a) -> Int * Bool");
    }

    #[test]
    fn let_generalises_values() {
        assert_eq!(
            ty_of("let f = fun x -> x in poly ~f").unwrap(),
            "Int * Bool"
        );
    }

    #[test]
    fn let_does_not_generalise_applications() {
        // bad5: let f = λx.x in ⌈f⌉ 42 — f : ∀a.a→a cannot be applied.
        assert!(ty_of("let f = fun x -> x in ~f 42").is_err());
        // choose (head ids) has a flexible mono var; F8.
        assert_eq!(
            ty_of("choose (head ids)").unwrap(),
            "(forall a. a -> a) -> forall a. a -> a"
        );
    }

    #[test]
    fn value_restriction_monomorphises() {
        // F9: let f = revapp ⌈id⌉ in f poly — f's residual var is demoted
        // but still solvable with the *monotype* Int × Bool.
        let mut g = env();
        g.push_str("revapp", "forall a b. a -> (a -> b) -> b")
            .unwrap();
        let r = infer_program(&g, "let f = revapp ~id in f poly", &Options::default());
        assert_eq!(r.unwrap().to_string(), "Int * Bool");
    }

    #[test]
    fn value_restriction_rejects_poly_solution() {
        // let xs = single id in ⌈xs⌉ : the element var is demoted to •;
        // freezing exposes List (a → a) — fine. But unifying xs's element
        // with a polytype afterwards must fail:
        // let xs = single id in choose ids xs.
        let mut g = env();
        let r = infer_program(
            &g,
            "let xs = single id in choose ids xs",
            &Options::default(),
        );
        assert!(r.is_err(), "demoted var must not take a polytype: {r:?}");
        g.push_str("append", "forall a. List a -> List a -> List a")
            .unwrap();
        let ok = infer_program(
            &g,
            "let xs = single id in append xs xs",
            &Options::default(),
        );
        assert_eq!(ok.unwrap().to_string(), "List (a -> a)");
    }

    #[test]
    fn annotated_let_accepts_non_principal_types() {
        // The annotation Int → Int is a non-principal instance of λx.x.
        assert_eq!(
            ty_of("let (f : Int -> Int) = fun x -> x in f 3").unwrap(),
            "Int"
        );
    }

    #[test]
    fn annotated_let_scoped_tyvars() {
        assert_eq!(
            ty_of("let (f : forall a. a -> a) = fun (x : a) -> x in f 3").unwrap(),
            "Int"
        );
    }

    #[test]
    fn annotated_let_rejects_wrong_annotation() {
        assert!(ty_of("let (f : Int -> Bool) = fun x -> x in f 3").is_err());
        // Quantifiers must originate from the rhs for non-values:
        // id id : b → b for flexible b; the annotation ∀a.a→a does not match.
        assert!(ty_of("let (f : forall a. a -> a) = id id in f").is_err());
    }

    #[test]
    fn annotation_escape_is_caught() {
        // λy. let (f : ∀a. a → a) = λ(x:a). y in f — solving y's type with
        // the annotation-bound `a` must be rejected.
        let r = ty_of("fun y -> let (f : forall a. a -> a) = fun (x : a) -> y in f");
        assert!(r.is_err());
    }

    #[test]
    fn eliminator_strategy_instantiates_heads() {
        let opts = Options::eliminator();
        let r = infer_program(&env(), "head ids 3", &opts);
        assert_eq!(r.unwrap().to_string(), "Int");
        // F7 without the explicit @:
        let r2 = infer_program(&env(), "(head ids) 3", &opts);
        assert_eq!(r2.unwrap().to_string(), "Int");
    }

    #[test]
    fn pure_mode_generalises_applications() {
        // F10† needs gen of an application.
        let r = infer_program(&env(), "$(auto' ~id)", &Options::pure_freezeml());
        assert_eq!(r.unwrap().to_string(), "forall a. a -> a");
        // Default mode: the flexible var is demoted, no generalisation.
        let r2 = infer_program(&env(), "$(auto' ~id)", &Options::default());
        assert_eq!(r2.unwrap().to_string(), "a -> a");
    }

    #[test]
    fn left_to_right_order_is_irrelevant_for_bad_examples() {
        // bad1/bad2 (§2): both must fail regardless of inference order.
        let mut g = env();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        for src in [
            "fun f -> (poly ~f, f 42 + 1)",
            "fun f -> (f 42 + 1, poly ~f)",
        ] {
            assert!(
                infer_program(&g, src, &Options::default()).is_err(),
                "{src} should be ill-typed"
            );
        }
    }

    #[test]
    fn bad3_bad4_fail_via_monomorphic_instantiation() {
        // §3.2: let f = bot bot in … — f's type variable is demoted, so
        // poly ⌈f⌉ fails in both argument orders.
        let mut g = env();
        g.push_str("bot", "forall a. a").unwrap();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        for src in [
            "fun (b : forall a. a) -> let f = bot bot in (poly ~f, f 42 + 1)",
            "fun (b : forall a. a) -> let f = bot bot in (f 42 + 1, poly ~f)",
        ] {
            assert!(
                infer_program(&g, src, &Options::default()).is_err(),
                "{src} should be ill-typed"
            );
        }
    }

    #[test]
    fn infer_term_resolves_derivation() {
        let term = crate::parser::parse_term("fun x -> inc x").unwrap();
        let out = infer_term(&env(), &term, &Options::default()).unwrap();
        assert_eq!(out.ty.to_string(), "Int -> Int");
        match &out.typed.node {
            TypedNode::Lam { param_ty, .. } => assert_eq!(param_ty, &Type::int()),
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_reports_cleanly() {
        assert_eq!(
            infer_program(&env(), "nope", &Options::default()),
            Err(ProgramError::Type(TypeError::UnboundVar(
                crate::names::Var::named("nope")
            )))
        );
    }
}
