//! FreezeML terms (Figure 3) and the value classes of the value restriction.
//!
//! ```text
//! M, N ::= x | ⌈x⌉ | λx.M | λ(x : A).M | M N
//!        | let x = M in N | let (x : A) = M in N
//! ```
//!
//! plus integer/boolean literals (the constants `42`, `True`, … used
//! throughout the paper's examples). Three syntactic classes drive the value
//! restriction (§3.1):
//!
//! * **values** `V` — may be generalised under the value restriction;
//! * **guarded values** `U` — values that can only have guarded types: all
//!   values *except* those with a frozen variable in tail position;
//! * everything else (applications).
//!
//! The explicit generalisation and instantiation operators of §2 are
//! macro-expressible and provided as smart constructors:
//!
//! ```text
//! $V    ≡ let x = V in ⌈x⌉          (Term::gen)
//! $A V  ≡ let (x : A) = V in ⌈x⌉    (Term::gen_ann)
//! M@    ≡ let x = M in x            (Term::inst)
//! ```

use crate::names::Var;
use crate::options::Options;
use crate::types::Type;
use std::collections::HashSet;
use std::fmt;

/// A literal constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Lit {
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// A boolean literal, `true` or `false`.
    Bool(bool),
}

impl Lit {
    /// The (monomorphic, guarded) type of the literal.
    pub fn ty(&self) -> Type {
        match self {
            Lit::Int(_) => Type::int(),
            Lit::Bool(_) => Type::bool(),
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A FreezeML term.
#[derive(Clone, PartialEq, Debug)]
pub enum Term {
    /// A plain variable occurrence `x` — implicitly instantiated.
    Var(Var),
    /// A frozen variable `⌈x⌉` (ASCII `~x`) — instantiation suppressed.
    FrozenVar(Var),
    /// `λx.M` — the parameter must receive a monotype.
    Lam(Var, Box<Term>),
    /// `λ(x : A).M` — the parameter may receive any System F type.
    LamAnn(Var, Type, Box<Term>),
    /// Application `M N`.
    App(Box<Term>, Box<Term>),
    /// `let x = M in N` — generalising (for guarded values) and principal.
    Let(Var, Box<Term>, Box<Term>),
    /// `let (x : A) = M in N` — annotated; admits non-principal types.
    LetAnn(Var, Type, Box<Term>, Box<Term>),
    /// A literal constant.
    Lit(Lit),
    /// Explicit type application `M@[A]` — an *extension* beyond Figure 3,
    /// mentioned in §6: "Given that FreezeML is explicit about the order
    /// of quantifiers, adding support for explicit type application is
    /// straightforward. We have implemented this feature in Links."
    /// `M` must have a `∀`-type; its outermost quantifier is instantiated
    /// with `A`.
    TyApp(Box<Term>, Type),
}

impl Term {
    /// The variable `x`.
    pub fn var(x: impl Into<Var>) -> Term {
        Term::Var(x.into())
    }

    /// The frozen variable `⌈x⌉`.
    pub fn frozen(x: impl Into<Var>) -> Term {
        Term::FrozenVar(x.into())
    }

    /// `λx.M`.
    pub fn lam(x: impl Into<Var>, body: Term) -> Term {
        Term::Lam(x.into(), Box::new(body))
    }

    /// `λ(x : A).M`.
    pub fn lam_ann(x: impl Into<Var>, ann: Type, body: Term) -> Term {
        Term::LamAnn(x.into(), ann, Box::new(body))
    }

    /// `M N`.
    pub fn app(f: Term, arg: Term) -> Term {
        Term::App(Box::new(f), Box::new(arg))
    }

    /// `M N₁ … Nₙ` (left-nested application).
    pub fn apps<I: IntoIterator<Item = Term>>(f: Term, args: I) -> Term {
        args.into_iter().fold(f, Term::app)
    }

    /// `let x = M in N`.
    pub fn let_(x: impl Into<Var>, rhs: Term, body: Term) -> Term {
        Term::Let(x.into(), Box::new(rhs), Box::new(body))
    }

    /// `let (x : A) = M in N`.
    pub fn let_ann(x: impl Into<Var>, ann: Type, rhs: Term, body: Term) -> Term {
        Term::LetAnn(x.into(), ann, Box::new(rhs), Box::new(body))
    }

    /// An integer literal.
    pub fn int(n: i64) -> Term {
        Term::Lit(Lit::Int(n))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> Term {
        Term::Lit(Lit::Bool(b))
    }

    /// Explicit generalisation `$V ≡ let x = V in ⌈x⌉` (§2).
    pub fn gen(v: Term) -> Term {
        let x = Var::fresh();
        Term::Let(x, Box::new(v), Box::new(Term::FrozenVar(x)))
    }

    /// Annotated generalisation `$A V ≡ let (x : A) = V in ⌈x⌉` (§2).
    pub fn gen_ann(ann: Type, v: Term) -> Term {
        let x = Var::fresh();
        Term::LetAnn(x, ann, Box::new(v), Box::new(Term::FrozenVar(x)))
    }

    /// Explicit instantiation `M@ ≡ let x = M in x` (§2).
    pub fn inst(m: Term) -> Term {
        let x = Var::fresh();
        Term::Let(x, Box::new(m), Box::new(Term::Var(x)))
    }

    /// Explicit type application `M@[A]` (§6 extension).
    pub fn ty_app(m: Term, ty: Type) -> Term {
        Term::TyApp(Box::new(m), ty)
    }

    /// Is this a syntactic value `V` (Figure 3)?
    pub fn is_value(&self) -> bool {
        match self {
            Term::Var(_)
            | Term::FrozenVar(_)
            | Term::Lam(_, _)
            | Term::LamAnn(_, _, _)
            | Term::Lit(_) => true,
            Term::Let(_, rhs, body) | Term::LetAnn(_, _, rhs, body) => {
                rhs.is_value() && body.is_value()
            }
            Term::App(_, _) | Term::TyApp(_, _) => false,
        }
    }

    /// Is this a guarded value `U` (Figure 3) — a value without a frozen
    /// variable in tail position?
    pub fn is_guarded_value(&self) -> bool {
        match self {
            Term::Var(_) | Term::Lam(_, _) | Term::LamAnn(_, _, _) | Term::Lit(_) => true,
            Term::FrozenVar(_) => false,
            Term::Let(_, rhs, body) | Term::LetAnn(_, _, rhs, body) => {
                rhs.is_value() && body.is_guarded_value()
            }
            Term::App(_, _) | Term::TyApp(_, _) => false,
        }
    }

    /// The guarded-value test used by `gen`, `split` and `⇕`: under the
    /// value restriction this is [`Term::is_guarded_value`]; in "pure"
    /// FreezeML (§3.2) every term may be generalised.
    pub fn is_gval(&self, opts: &Options) -> bool {
        !opts.value_restriction || self.is_guarded_value()
    }

    /// The free term variables, ordered by first occurrence (plain and
    /// frozen occurrences both count). Drives the dependency analysis of
    /// top-level programs ([`crate::program`]).
    pub fn free_vars(&self) -> Vec<Var> {
        fn go(t: &Term, scope: &mut Vec<Var>, seen: &mut HashSet<Var>, out: &mut Vec<Var>) {
            match t {
                Term::Var(x) | Term::FrozenVar(x) => {
                    if !scope.contains(x) && seen.insert(*x) {
                        out.push(*x);
                    }
                }
                Term::Lam(x, b) | Term::LamAnn(x, _, b) => {
                    scope.push(*x);
                    go(b, scope, seen, out);
                    scope.pop();
                }
                Term::App(f, a) => {
                    go(f, scope, seen, out);
                    go(a, scope, seen, out);
                }
                Term::Let(x, r, b) | Term::LetAnn(x, _, r, b) => {
                    go(r, scope, seen, out);
                    scope.push(*x);
                    go(b, scope, seen, out);
                    scope.pop();
                }
                Term::Lit(_) => {}
                Term::TyApp(m, _) => go(m, scope, seen, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut HashSet::new(), &mut out);
        out
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::FrozenVar(_) | Term::Lit(_) => 1,
            Term::Lam(_, b) | Term::LamAnn(_, _, b) => 1 + b.size(),
            Term::App(f, a) => 1 + f.size() + a.size(),
            Term::Let(_, r, b) | Term::LetAnn(_, _, r, b) => 1 + r.size() + b.size(),
            Term::TyApp(m, _) => 1 + m.size(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_term(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_have_types() {
        assert_eq!(Lit::Int(3).ty(), Type::int());
        assert_eq!(Lit::Bool(true).ty(), Type::bool());
    }

    #[test]
    fn value_classification() {
        let x = Term::var("x");
        let fx = Term::frozen("x");
        let lam = Term::lam("x", Term::var("x"));
        let app = Term::app(Term::var("f"), Term::var("x"));
        assert!(x.is_value() && x.is_guarded_value());
        assert!(fx.is_value() && !fx.is_guarded_value());
        assert!(lam.is_value() && lam.is_guarded_value());
        assert!(!app.is_value() && !app.is_guarded_value());
        assert!(Term::int(3).is_value() && Term::int(3).is_guarded_value());
    }

    #[test]
    fn let_values_are_closed_under_binding() {
        // let x = λy.y in x        — value, guarded
        // let x = λy.y in ⌈x⌉      — value, NOT guarded (frozen tail)
        // let x = f y in x         — not a value (rhs is an application)
        let v = Term::let_("x", Term::lam("y", Term::var("y")), Term::var("x"));
        assert!(v.is_value() && v.is_guarded_value());
        let fv = Term::let_("x", Term::lam("y", Term::var("y")), Term::frozen("x"));
        assert!(fv.is_value() && !fv.is_guarded_value());
        let nv = Term::let_(
            "x",
            Term::app(Term::var("f"), Term::var("y")),
            Term::var("x"),
        );
        assert!(!nv.is_value() && !nv.is_guarded_value());
    }

    #[test]
    fn gen_is_value_but_not_guarded() {
        // $V = let x = V in ⌈x⌉ — a value with a frozen tail.
        let g = Term::gen(Term::lam("x", Term::var("x")));
        assert!(g.is_value());
        assert!(!g.is_guarded_value());
    }

    #[test]
    fn inst_is_guarded_when_rhs_is_value() {
        // (V)@ = let x = V in x — a guarded value (used by E⟦−⟧, §4.1).
        let i = Term::inst(Term::frozen("y"));
        assert!(i.is_guarded_value());
        // (M N)@ is not a value.
        let i2 = Term::inst(Term::app(Term::var("f"), Term::var("x")));
        assert!(!i2.is_value());
    }

    #[test]
    fn pure_mode_ignores_value_restriction() {
        let app = Term::app(Term::var("f"), Term::var("x"));
        assert!(!app.is_gval(&Options::default()));
        assert!(app.is_gval(&Options::pure_freezeml()));
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::app(Term::var("f"), Term::lam("x", Term::var("x")));
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn apps_builds_left_nested() {
        let t = Term::apps(Term::var("f"), [Term::var("x"), Term::var("y")]);
        assert_eq!(
            t,
            Term::app(Term::app(Term::var("f"), Term::var("x")), Term::var("y"))
        );
    }
}
