//! The unification algorithm (Figure 15).
//!
//! `unify(∆, Θ, A, B)` takes rigid environment `∆`, flexible environment
//! `Θ`, and two types well-kinded under them, and produces a new flexible
//! environment `Θ′` together with a most general substitution `θ` with
//! `∆ ⊢ θ : Θ ⇒ Θ′` and `θ(A) = θ(B)` (Theorems 4 and 5).
//!
//! Salient points, all from the paper:
//!
//! * **No separate occurs check** — solving `a ↦ A` removes `a` from `Θ` and
//!   then re-kinds `A` in the smaller environment; a recursive occurrence
//!   shows up as an unbound variable, which we report as
//!   [`TypeError::Occurs`].
//! * **Kind-directed demotion** — a monomorphic flexible variable may only
//!   be solved with a type whose flexible variables can all be *demoted* to
//!   kind `•`; a polymorphic flexible variable unifies with any type,
//!   including `∀`-types. This is how first-class polymorphism coexists with
//!   "never guess polymorphism".
//! * **Skolemisation** — `∀a.A ≟ ∀b.B` unifies the bodies against a shared
//!   fresh *rigid* variable `c`, and fails if `c` leaks into the resulting
//!   substitution (`c ∉ ftv(θ′)`).

use crate::env::{KindEnv, RefinedEnv};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::kinding;
use crate::names::TyVar;
use crate::subst::Subst;
use crate::types::Type;

/// `demote(K, Θ, ∆′)` (Figure 15): when `K = •`, demote the listed
/// variables to kind `•`; when `K = ⋆`, leave `Θ` unchanged.
pub fn demote(k: Kind, theta: &RefinedEnv, vars: &[TyVar]) -> RefinedEnv {
    match k {
        Kind::Poly => theta.clone(),
        Kind::Mono => theta.demoted(vars),
    }
}

/// Unify two types. See the module documentation.
///
/// # Errors
///
/// * [`TypeError::Mismatch`] — incompatible heads (including `∀` vs non-`∀`
///   and distinct rigid variables);
/// * [`TypeError::Occurs`] — the infinite-type check;
/// * [`TypeError::PolyNotAllowed`] — a `•`-kinded variable against a
///   quantified type;
/// * [`TypeError::SkolemEscape`] — a quantifier-bound variable escaping.
pub fn unify(
    delta: &KindEnv,
    theta: &RefinedEnv,
    a: &Type,
    b: &Type,
) -> Result<(RefinedEnv, Subst), TypeError> {
    match (a, b) {
        (Type::Var(x), Type::Var(y)) if x == y => Ok((theta.clone(), Subst::identity())),
        (Type::Var(x), _) if theta.contains(x) => bind(delta, theta, x, b),
        (_, Type::Var(y)) if theta.contains(y) => bind(delta, theta, y, a),
        (Type::Con(c, xs), Type::Con(d, ys)) => {
            if c != d || xs.len() != ys.len() {
                return Err(TypeError::Mismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            let mut th = theta.clone();
            let mut s = Subst::identity();
            for (x, y) in xs.iter().zip(ys) {
                let (th2, s2) = unify(delta, &th, &s.apply(x), &s.apply(y))?;
                s = s2.compose(&s);
                th = th2;
            }
            Ok((th, s))
        }
        (Type::Forall(x, bx), Type::Forall(y, by)) => {
            let c = TyVar::skolem();
            let delta2 = delta.extended([c]).expect("skolem is fresh");
            let a2 = bx.rename_free(x, &Type::Var(c));
            let b2 = by.rename_free(y, &Type::Var(c));
            let (th, s) = unify(&delta2, theta, &a2, &b2)?;
            if s.range_mentions(&c) {
                return Err(TypeError::SkolemEscape { var: c });
            }
            Ok((th, s))
        }
        _ => Err(TypeError::Mismatch {
            left: a.clone(),
            right: b.clone(),
        }),
    }
}

/// Solve a flexible variable: the `unify(∆, (Θ, a:K), a, A)` cases of
/// Figure 15.
fn bind(
    delta: &KindEnv,
    theta: &RefinedEnv,
    x: &TyVar,
    t: &Type,
) -> Result<(RefinedEnv, Subst), TypeError> {
    let k = theta.kind_of(x).expect("bind requires a flexible variable");
    let theta0 = theta.without(x);
    let flex_fvs: Vec<TyVar> = t.ftv().into_iter().filter(|v| !delta.contains(v)).collect();
    let theta1 = demote(k, &theta0, &flex_fvs);
    match kinding::kind_of(delta, &theta1, t) {
        Ok(kt) if kt.le(k) => Ok((theta1, Subst::singleton(*x, t.clone()))),
        Ok(_) => Err(TypeError::PolyNotAllowed { ty: t.clone() }),
        Err(TypeError::UnboundTyVar(v)) if v == *x => Err(TypeError::Occurs {
            var: *x,
            ty: t.clone(),
        }),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_type;

    fn poly_env(vars: &[&TyVar]) -> RefinedEnv {
        vars.iter().map(|v| (*(*v), Kind::Poly)).collect()
    }

    fn mono_env(vars: &[&TyVar]) -> RefinedEnv {
        vars.iter().map(|v| (*(*v), Kind::Mono)).collect()
    }

    fn id_ty() -> Type {
        parse_type("forall a. a -> a").unwrap()
    }

    #[test]
    fn unifies_equal_ground_types() {
        let (th, s) = unify(
            &KindEnv::new(),
            &RefinedEnv::new(),
            &Type::int(),
            &Type::int(),
        )
        .unwrap();
        assert!(th.is_empty());
        assert!(s.is_identity());
    }

    #[test]
    fn solves_flexible_variable() {
        let a = TyVar::fresh();
        let th = poly_env(&[&a]);
        let t = Type::arrow(Type::int(), Type::bool());
        let (th1, s) = unify(&KindEnv::new(), &th, &Type::Var(a), &t).unwrap();
        assert!(!th1.contains(&a));
        assert_eq!(s.apply(&Type::Var(a)), t);
    }

    #[test]
    fn poly_flexible_takes_polytype() {
        // The crucial capability: b : ⋆ unifies with ∀a.a→a (impredicative
        // instantiation, e.g. example A3 `choose [] ids`).
        let b = TyVar::fresh();
        let th = poly_env(&[&b]);
        let (_, s) = unify(&KindEnv::new(), &th, &Type::Var(b), &id_ty()).unwrap();
        assert!(s.apply(&Type::Var(b)).alpha_eq(&id_ty()));
    }

    #[test]
    fn mono_flexible_rejects_polytype() {
        let b = TyVar::fresh();
        let th = mono_env(&[&b]);
        let r = unify(&KindEnv::new(), &th, &Type::Var(b), &id_ty());
        assert!(matches!(r, Err(TypeError::PolyNotAllowed { .. })));
    }

    #[test]
    fn mono_flexible_demotes_poly_flexibles() {
        // a : •  ≟  List b  with  b : ⋆   ⇒   b is demoted to •.
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Mono), (b, Kind::Poly)].into_iter().collect();
        let t = Type::list(Type::Var(b));
        let (th1, _) = unify(&KindEnv::new(), &th, &Type::Var(a), &t).unwrap();
        assert_eq!(th1.kind_of(&b), Some(Kind::Mono));
    }

    #[test]
    fn occurs_check_fires() {
        let a = TyVar::fresh();
        let th = poly_env(&[&a]);
        let t = Type::arrow(Type::Var(a), Type::int());
        let r = unify(&KindEnv::new(), &th, &Type::Var(a), &t);
        assert!(matches!(r, Err(TypeError::Occurs { .. })));
    }

    #[test]
    fn rigid_vars_unify_only_with_themselves() {
        let d: KindEnv = [TyVar::named("a"), TyVar::named("b")].into_iter().collect();
        let th = RefinedEnv::new();
        assert!(unify(&d, &th, &Type::var("a"), &Type::var("a")).is_ok());
        assert!(matches!(
            unify(&d, &th, &Type::var("a"), &Type::var("b")),
            Err(TypeError::Mismatch { .. })
        ));
        assert!(matches!(
            unify(&d, &th, &Type::var("a"), &Type::int()),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn constructor_mismatch() {
        let r = unify(
            &KindEnv::new(),
            &RefinedEnv::new(),
            &Type::int(),
            &Type::bool(),
        );
        assert!(matches!(r, Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn unifies_under_constructor_threading_substitution() {
        // (a, a) ≟ (Int, b) — second component forces b ↦ Int via θ-threading.
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Poly), (b, Kind::Poly)].into_iter().collect();
        let l = Type::prod(Type::Var(a), Type::Var(a));
        let r = Type::prod(Type::int(), Type::Var(b));
        let (_, s) = unify(&KindEnv::new(), &th, &l, &r).unwrap();
        assert_eq!(s.apply(&Type::Var(a)), Type::int());
        assert_eq!(s.apply(&Type::Var(b)), Type::int());
    }

    #[test]
    fn alpha_equivalent_foralls_unify() {
        let s = parse_type("forall a. a -> a").unwrap();
        let t = parse_type("forall b. b -> b").unwrap();
        let (_, subst) = unify(&KindEnv::new(), &RefinedEnv::new(), &s, &t).unwrap();
        assert!(subst.is_identity());
    }

    #[test]
    fn quantifier_order_matters() {
        // ∀a b. a → b → a×b  vs  ∀b a. a → b → a×b  must NOT unify (§2).
        let s = parse_type("forall a b. a -> b -> a * b").unwrap();
        let t = parse_type("forall b a. a -> b -> a * b").unwrap();
        assert!(unify(&KindEnv::new(), &RefinedEnv::new(), &s, &t).is_err());
    }

    #[test]
    fn foralls_solve_inner_flexibles() {
        // ∀s. ST s b  ≟  ∀s. ST s Int   ⇒  b ↦ Int  (example D3 runST ⌈argST⌉).
        let b = TyVar::fresh();
        let th = poly_env(&[&b]);
        let s = Type::Forall(
            TyVar::named("s"),
            Box::new(Type::st(Type::var("s"), Type::Var(b))),
        );
        let t = parse_type("forall s. ST s Int").unwrap();
        let (_, subst) = unify(&KindEnv::new(), &th, &s, &t).unwrap();
        assert_eq!(subst.apply(&Type::Var(b)), Type::int());
    }

    #[test]
    fn skolem_escape_is_rejected() {
        // ∀a. a → b  ≟  ∀a. a → a   would need b ↦ skolem — escape.
        let b = TyVar::fresh();
        let th = poly_env(&[&b]);
        let s = Type::Forall(
            TyVar::named("a"),
            Box::new(Type::arrow(Type::var("a"), Type::Var(b))),
        );
        let t = parse_type("forall a. a -> a").unwrap();
        let r = unify(&KindEnv::new(), &th, &s, &t);
        assert!(matches!(r, Err(TypeError::SkolemEscape { .. })));
    }

    #[test]
    fn forall_vs_arrow_fails() {
        // E1 `k h l` fails exactly here: Int → ∀a.a→a  ≟  ∀a.Int → a → a.
        let s = parse_type("Int -> forall a. a -> a").unwrap();
        let t = parse_type("forall a. Int -> a -> a").unwrap();
        assert!(matches!(
            unify(&KindEnv::new(), &RefinedEnv::new(), &s, &t),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn two_flexibles_unify_and_demote() {
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        // a : •, b : ⋆ — unifying them must demote b.
        let th: RefinedEnv = [(a, Kind::Mono), (b, Kind::Poly)].into_iter().collect();
        let (th1, s) = unify(&KindEnv::new(), &th, &Type::Var(a), &Type::Var(b)).unwrap();
        assert_eq!(s.apply(&Type::Var(a)), Type::Var(b));
        assert_eq!(th1.kind_of(&b), Some(Kind::Mono));
    }

    #[test]
    fn unifier_equalises_both_sides() {
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        let th = poly_env(&[&a, &b]);
        let l = Type::arrow(Type::Var(a), Type::list(Type::Var(b)));
        let r = Type::arrow(Type::list(Type::Var(b)), Type::Var(a));
        let (_, s) = unify(&KindEnv::new(), &th, &l, &r).unwrap();
        assert!(s.apply(&l).alpha_eq(&s.apply(&r)));
    }
}
