//! Checker options: the value restriction and the instantiation strategy.
//!
//! The paper's formal system (Figures 7–16) adopts the ML value restriction
//! and instantiates *variables only*. §3.2 and §6 describe two variations
//! which the Links implementation supports and which we reproduce here:
//!
//! * **"Pure" FreezeML** — no value restriction. Needed for example F10† of
//!   Figure 1, which generalises an application.
//! * **Eliminator instantiation** — terms in application head position are
//!   implicitly instantiated, so e.g. `(head ids) 42` typechecks without an
//!   explicit `@`.

/// How implicit instantiation is performed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum InstantiationStrategy {
    /// Only variable occurrences are implicitly instantiated (the paper's
    /// formal system).
    #[default]
    Variable,
    /// Additionally instantiate terms in application head position (§3.2
    /// "Instantiation strategies"; supported by the Links implementation).
    Eliminator,
}

/// Configuration for well-scopedness checking and type inference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Options {
    /// Apply the ML value restriction (default `true`). When `false`, every
    /// term may be generalised — the hypothetical "pure" FreezeML of §3.2.
    pub value_restriction: bool,
    /// The implicit instantiation strategy.
    pub instantiation: InstantiationStrategy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            value_restriction: true,
            instantiation: InstantiationStrategy::Variable,
        }
    }
}

impl Options {
    /// The paper's formal system: value restriction on, variable
    /// instantiation.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Pure" FreezeML: no value restriction (§3.2).
    pub fn pure_freezeml() -> Self {
        Options {
            value_restriction: false,
            ..Self::default()
        }
    }

    /// Eliminator instantiation (§3.2, §6).
    pub fn eliminator() -> Self {
        Options {
            instantiation: InstantiationStrategy::Eliminator,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_system() {
        let o = Options::default();
        assert!(o.value_restriction);
        assert_eq!(o.instantiation, InstantiationStrategy::Variable);
        assert_eq!(Options::new(), Options::default());
    }

    #[test]
    fn presets() {
        assert!(!Options::pure_freezeml().value_restriction);
        assert_eq!(
            Options::eliminator().instantiation,
            InstantiationStrategy::Eliminator
        );
        assert!(Options::eliminator().value_restriction);
    }
}
