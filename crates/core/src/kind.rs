//! Kinds `•` (monomorphic) and `⋆` (polymorphic), Figure 3.
//!
//! FreezeML's kind system has exactly two kinds. A type has kind [`Kind::Mono`]
//! when it is entirely free of quantifiers; every type has kind
//! [`Kind::Poly`] (the upcast rule of Figure 4). Inference additionally uses
//! kinds on *flexible* variables to record whether a unification variable may
//! be solved with a polymorphic type (§5.1) — this is the mechanism that
//! enforces the paper's "never guess polymorphism" principle.

use std::fmt;

/// A FreezeML kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Kind {
    /// `•` — monomorphic types (no quantifiers anywhere).
    #[default]
    Mono,
    /// `⋆` — all types, including polymorphic ones.
    Poly,
}

impl Kind {
    /// The join `⊔` of the two-point kind lattice (`• ⊑ ⋆`), used by the
    /// admissible instantiation rule in §3.1.
    pub fn join(self, other: Kind) -> Kind {
        match (self, other) {
            (Kind::Mono, Kind::Mono) => Kind::Mono,
            _ => Kind::Poly,
        }
    }

    /// Lattice order: `K ≤ K'` iff `K ⊔ K' = K'`.
    pub fn le(self, other: Kind) -> bool {
        self.join(other) == other
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Mono => write!(f, "*mono"),
            Kind::Poly => write!(f, "*poly"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_lattice_join() {
        assert_eq!(Kind::Mono.join(Kind::Mono), Kind::Mono);
        assert_eq!(Kind::Mono.join(Kind::Poly), Kind::Poly);
        assert_eq!(Kind::Poly.join(Kind::Mono), Kind::Poly);
        assert_eq!(Kind::Poly.join(Kind::Poly), Kind::Poly);
    }

    #[test]
    fn order_matches_join() {
        assert!(Kind::Mono.le(Kind::Poly));
        assert!(Kind::Mono.le(Kind::Mono));
        assert!(Kind::Poly.le(Kind::Poly));
        assert!(!Kind::Poly.le(Kind::Mono));
    }

    #[test]
    fn default_is_mono() {
        assert_eq!(Kind::default(), Kind::Mono);
    }
}
