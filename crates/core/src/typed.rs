//! Typed derivation trees.
//!
//! Inference (Figure 16) produces, alongside the result type, a tree that
//! mirrors the term with every node annotated by its (final) type and the
//! extra information a FreezeML typing derivation carries:
//!
//! * variable occurrences record the instantiation `δ(∆′)` chosen for their
//!   top-level quantifiers (the Var rule of Figure 7);
//! * `let` nodes record the generalised variables `∆′` and the type given
//!   to the bound variable (the `gen`/`⇕` data of Figure 8);
//! * annotated `let` nodes record the `split` of their annotation.
//!
//! This is exactly the information the translation `C⟦−⟧` to System F
//! (Figure 11) consumes, and it realises the paper's observation (Appendix
//! C) that recursion over derivations is sound as long as the principality
//! side-condition is not inspected.
//!
//! Types inside the tree may mention flexible variables that were solved
//! *later* during inference; [`TypedTerm::apply_subst`] with the final
//! composed substitution resolves them (composed substitutions map every
//! variable to its fully resolved image). [`TypedTerm::default_residuals`]
//! grounds any remaining flexible variables, which is needed before
//! elaborating an open typing into System F.

use crate::names::{TyVar, Var};
use crate::subst::Subst;
use crate::term::Lit;
use crate::types::Type;

/// A term annotated with its type and derivation data.
#[derive(Clone, Debug, PartialEq)]
pub struct TypedTerm {
    /// The type of this node.
    pub ty: Type,
    /// The node itself.
    pub node: TypedNode,
}

/// The node forms of a typed derivation tree.
#[derive(Clone, Debug, PartialEq)]
pub enum TypedNode {
    /// A plain variable occurrence, implicitly instantiated.
    Var {
        /// The variable.
        name: Var,
        /// Its type scheme in `Γ` at the occurrence.
        scheme: Type,
        /// The instantiation of the scheme's top-level quantifiers, in
        /// quantifier order: `(a, δ(a))`.
        inst: Vec<(TyVar, Type)>,
    },
    /// A frozen variable occurrence `⌈x⌉`.
    FrozenVar {
        /// The variable.
        name: Var,
    },
    /// A literal.
    Lit {
        /// The literal.
        lit: Lit,
    },
    /// `λx.M` — the parameter type is the monotype inference chose.
    Lam {
        /// The parameter.
        param: Var,
        /// Its inferred (mono)type `S`.
        param_ty: Type,
        /// The body.
        body: Box<TypedTerm>,
    },
    /// `λ(x : A).M`.
    LamAnn {
        /// The parameter.
        param: Var,
        /// The annotation `A`.
        ann: Type,
        /// The body.
        body: Box<TypedTerm>,
    },
    /// Application.
    App {
        /// The function.
        func: Box<TypedTerm>,
        /// The argument.
        arg: Box<TypedTerm>,
    },
    /// Explicit type application `M@[A]` (§6 extension): the outermost
    /// quantifier `∀a` of the inner term's type is instantiated with `A`.
    TyApp {
        /// The type-applied term.
        inner: Box<TypedTerm>,
        /// The instantiated quantifier variable.
        bound: TyVar,
        /// The type argument `A`.
        arg: Type,
    },
    /// An implicit instantiation inserted by the *eliminator* strategy
    /// (§3.2); absent under the paper's variable-only strategy.
    ImplicitInst {
        /// The instantiated term.
        inner: Box<TypedTerm>,
        /// The instantiation of its top-level quantifiers.
        inst: Vec<(TyVar, Type)>,
    },
    /// `let x = M in N`.
    Let {
        /// The bound variable.
        name: Var,
        /// `∆′` — the variables generalised over (empty if the rhs is not a
        /// guarded value).
        gen_vars: Vec<TyVar>,
        /// `∆′′′` minus the generalised ones: flexible variables of the rhs
        /// type that the value restriction forced to be monomorphic.
        mono_vars: Vec<TyVar>,
        /// The type `∀∆′.A` given to `x` in the body.
        bound_ty: Type,
        /// Was the rhs treated as a guarded value?
        rhs_gval: bool,
        /// The right-hand side.
        rhs: Box<TypedTerm>,
        /// The body.
        body: Box<TypedTerm>,
    },
    /// `let (x : A) = M in N`.
    LetAnn {
        /// The bound variable.
        name: Var,
        /// The annotation `A`.
        ann: Type,
        /// `split(A, M)`'s bound variables (scoped into the rhs).
        split_vars: Vec<TyVar>,
        /// Was the rhs treated as a guarded value?
        rhs_gval: bool,
        /// The right-hand side.
        rhs: Box<TypedTerm>,
        /// The body.
        body: Box<TypedTerm>,
    },
}

impl TypedTerm {
    /// Apply a substitution to every type in the tree (including recorded
    /// instantiations and parameter types).
    pub fn apply_subst(&mut self, s: &Subst) {
        self.ty = s.apply(&self.ty);
        match &mut self.node {
            TypedNode::Var { scheme, inst, .. } => {
                *scheme = s.apply(scheme);
                for (_, t) in inst {
                    *t = s.apply(t);
                }
            }
            TypedNode::FrozenVar { .. } | TypedNode::Lit { .. } => {}
            TypedNode::Lam { param_ty, body, .. } => {
                *param_ty = s.apply(param_ty);
                body.apply_subst(s);
            }
            TypedNode::LamAnn { body, .. } => body.apply_subst(s),
            TypedNode::App { func, arg } => {
                func.apply_subst(s);
                arg.apply_subst(s);
            }
            TypedNode::TyApp { inner, arg, .. } => {
                inner.apply_subst(s);
                *arg = s.apply(arg);
            }
            TypedNode::ImplicitInst { inner, inst } => {
                inner.apply_subst(s);
                for (_, t) in inst {
                    *t = s.apply(t);
                }
            }
            TypedNode::Let {
                bound_ty,
                rhs,
                body,
                ..
            } => {
                *bound_ty = s.apply(bound_ty);
                rhs.apply_subst(s);
                body.apply_subst(s);
            }
            TypedNode::LetAnn { rhs, body, .. } => {
                rhs.apply_subst(s);
                body.apply_subst(s);
            }
        }
    }

    /// Collect every flexible (fresh) variable still free in the tree's
    /// types, in first-appearance order. Variables generalised by a `let`
    /// (`gen_vars`) or bound by an annotation's `split` are *not* residual
    /// — they are bound by the `Λ` the translation inserts. (Fresh names
    /// are globally unique, so a generalised variable cannot also occur
    /// free elsewhere.)
    pub fn residual_flexibles(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut bound = std::collections::HashSet::new();
        self.collect_bound(&mut bound);
        self.visit_types(&mut |t| {
            for v in t.ftv() {
                if v.is_fresh() && !bound.contains(&v) && seen.insert(v) {
                    out.push(v);
                }
            }
        });
        out
    }

    fn collect_bound(&self, out: &mut std::collections::HashSet<TyVar>) {
        match &self.node {
            TypedNode::Var { .. } | TypedNode::FrozenVar { .. } | TypedNode::Lit { .. } => {}
            TypedNode::Lam { body, .. } | TypedNode::LamAnn { body, .. } => body.collect_bound(out),
            TypedNode::App { func, arg } => {
                func.collect_bound(out);
                arg.collect_bound(out);
            }
            TypedNode::TyApp { inner, .. } => inner.collect_bound(out),
            TypedNode::ImplicitInst { inner, .. } => inner.collect_bound(out),
            TypedNode::Let {
                gen_vars,
                rhs,
                body,
                ..
            } => {
                out.extend(gen_vars.iter().cloned());
                rhs.collect_bound(out);
                body.collect_bound(out);
            }
            TypedNode::LetAnn {
                split_vars,
                rhs,
                body,
                ..
            } => {
                out.extend(split_vars.iter().cloned());
                rhs.collect_bound(out);
                body.collect_bound(out);
            }
        }
    }

    /// Ground any remaining flexible variables by substituting `default`
    /// (typically `Int`). The result is a fully resolved derivation suitable
    /// for elaboration into System F.
    pub fn default_residuals(&mut self, default: &Type) {
        let residuals = self.residual_flexibles();
        if residuals.is_empty() {
            return;
        }
        let s = Subst::from_pairs(residuals.into_iter().map(|v| (v, default.clone())));
        self.apply_subst(&s);
    }

    fn visit_types(&self, f: &mut impl FnMut(&Type)) {
        f(&self.ty);
        match &self.node {
            TypedNode::Var { scheme, inst, .. } => {
                f(scheme);
                inst.iter().for_each(|(_, t)| f(t));
            }
            TypedNode::FrozenVar { .. } | TypedNode::Lit { .. } => {}
            TypedNode::Lam { param_ty, body, .. } => {
                f(param_ty);
                body.visit_types(f);
            }
            TypedNode::LamAnn { ann, body, .. } => {
                f(ann);
                body.visit_types(f);
            }
            TypedNode::App { func, arg } => {
                func.visit_types(f);
                arg.visit_types(f);
            }
            TypedNode::TyApp { inner, arg, .. } => {
                inner.visit_types(f);
                f(arg);
            }
            TypedNode::ImplicitInst { inner, inst } => {
                inner.visit_types(f);
                inst.iter().for_each(|(_, t)| f(t));
            }
            TypedNode::Let {
                bound_ty,
                rhs,
                body,
                ..
            } => {
                f(bound_ty);
                rhs.visit_types(f);
                body.visit_types(f);
            }
            TypedNode::LetAnn { ann, rhs, body, .. } => {
                f(ann);
                rhs.visit_types(f);
                body.visit_types(f);
            }
        }
    }

    /// Erase back to the plain term.
    pub fn erase(&self) -> crate::term::Term {
        use crate::term::Term;
        match &self.node {
            TypedNode::Var { name, .. } => Term::Var(*name),
            TypedNode::FrozenVar { name } => Term::FrozenVar(*name),
            TypedNode::Lit { lit } => Term::Lit(*lit),
            TypedNode::Lam { param, body, .. } => Term::Lam(*param, Box::new(body.erase())),
            TypedNode::LamAnn { param, ann, body } => {
                Term::LamAnn(*param, ann.clone(), Box::new(body.erase()))
            }
            TypedNode::App { func, arg } => {
                Term::App(Box::new(func.erase()), Box::new(arg.erase()))
            }
            TypedNode::TyApp { inner, arg, .. } => {
                Term::TyApp(Box::new(inner.erase()), arg.clone())
            }
            TypedNode::ImplicitInst { inner, .. } => inner.erase(),
            TypedNode::Let {
                name, rhs, body, ..
            } => Term::Let(*name, Box::new(rhs.erase()), Box::new(body.erase())),
            TypedNode::LetAnn {
                name,
                ann,
                rhs,
                body,
                ..
            } => Term::LetAnn(
                *name,
                ann.clone(),
                Box::new(rhs.erase()),
                Box::new(body.erase()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_subst_reaches_all_types() {
        let a = TyVar::fresh();
        let mut t = TypedTerm {
            ty: Type::Var(a),
            node: TypedNode::Lam {
                param: Var::named("x"),
                param_ty: Type::Var(a),
                body: Box::new(TypedTerm {
                    ty: Type::Var(a),
                    node: TypedNode::Var {
                        name: Var::named("x"),
                        scheme: Type::Var(a),
                        inst: vec![(TyVar::named("q"), Type::Var(a))],
                    },
                }),
            },
        };
        t.apply_subst(&Subst::singleton(a, Type::int()));
        assert_eq!(t.ty, Type::int());
        match &t.node {
            TypedNode::Lam { param_ty, body, .. } => {
                assert_eq!(*param_ty, Type::int());
                match &body.node {
                    TypedNode::Var { scheme, inst, .. } => {
                        assert_eq!(*scheme, Type::int());
                        assert_eq!(inst[0].1, Type::int());
                    }
                    other => panic!("unexpected node {other:?}"),
                }
            }
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn residuals_and_defaulting() {
        let a = TyVar::fresh();
        let mut t = TypedTerm {
            ty: Type::list(Type::Var(a)),
            node: TypedNode::Lit { lit: Lit::Int(1) },
        };
        assert_eq!(t.residual_flexibles(), vec![a]);
        t.default_residuals(&Type::int());
        assert_eq!(t.ty, Type::list(Type::int()));
        assert!(t.residual_flexibles().is_empty());
    }

    #[test]
    fn erase_round_trips() {
        let t = TypedTerm {
            ty: Type::int(),
            node: TypedNode::App {
                func: Box::new(TypedTerm {
                    ty: Type::arrow(Type::int(), Type::int()),
                    node: TypedNode::Var {
                        name: Var::named("f"),
                        scheme: Type::arrow(Type::int(), Type::int()),
                        inst: vec![],
                    },
                }),
                arg: Box::new(TypedTerm {
                    ty: Type::int(),
                    node: TypedNode::Lit { lit: Lit::Int(3) },
                }),
            },
        };
        use crate::term::Term;
        assert_eq!(t.erase(), Term::app(Term::var("f"), Term::int(3)));
    }
}
