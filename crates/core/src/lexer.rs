//! Lexer for the ASCII surface syntax.
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_']*` (primes allowed, so `auto'`
//! and `pair'` from Figure 2 lex as single identifiers). Comments run from
//! `--` to end of line. The freeze, generalisation, and instantiation
//! operators lex as `~`, `$`, and `@`.

use crate::symbol::Symbol;
use std::fmt;

/// A lexical token with its byte offset (for error reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub pos: usize,
}

/// The kinds of token in the surface syntax.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `fun`
    Fun,
    /// `let`
    Let,
    /// `in`
    In,
    /// `forall`
    Forall,
    /// `true`
    True,
    /// `false`
    False,
    /// An identifier, interned once into the global symbol table.
    Ident(Symbol),
    /// An integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `,`
    Comma,
    /// `~`
    Tilde,
    /// `$`
    Dollar,
    /// `@`
    At,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `=`
    Eq,
    /// `;;` — top-level declaration terminator (program surface).
    SemiSemi,
    /// `#name` — a top-level pragma such as `#use` (program surface).
    Pragma(String),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Fun => write!(f, "fun"),
            TokenKind::Let => write!(f, "let"),
            TokenKind::In => write!(f, "in"),
            TokenKind::Forall => write!(f, "forall"),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::ColonColon => write!(f, "::"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Dollar => write!(f, "$"),
            TokenKind::At => write!(f, "@"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::PlusPlus => write!(f, "++"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::SemiSemi => write!(f, ";;"),
            TokenKind::Pragma(s) => write!(f, "#{s}"),
        }
    }
}

/// A lexing failure: an unexpected character.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// A human-readable message.
    pub msg: String,
    /// Byte offset of the failure.
    pub pos: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenise the input.
///
/// # Errors
///
/// Returns a [`LexError`] on characters outside the surface syntax.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token {
                    kind: TokenKind::Arrow,
                    pos,
                });
                i += 2;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    pos,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                out.push(Token {
                    kind: TokenKind::ColonColon,
                    pos,
                });
                i += 2;
            }
            ':' => {
                out.push(Token {
                    kind: TokenKind::Colon,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            '~' => {
                out.push(Token {
                    kind: TokenKind::Tilde,
                    pos,
                });
                i += 1;
            }
            '$' => {
                out.push(Token {
                    kind: TokenKind::Dollar,
                    pos,
                });
                i += 1;
            }
            '@' => {
                out.push(Token {
                    kind: TokenKind::At,
                    pos,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            '+' if bytes.get(i + 1) == Some(&b'+') => {
                out.push(Token {
                    kind: TokenKind::PlusPlus,
                    pos,
                });
                i += 2;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            ';' if bytes.get(i + 1) == Some(&b';') => {
                out.push(Token {
                    kind: TokenKind::SemiSemi,
                    pos,
                });
                i += 2;
            }
            '#' if bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_ascii_alphabetic()) =>
            {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Pragma(src[start..i].to_string()),
                    pos,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<i64>().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` out of range"),
                    pos,
                })?;
                out.push(Token {
                    kind: TokenKind::Int(n),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let kind = match text {
                    "fun" => TokenKind::Fun,
                    "let" => TokenKind::Let,
                    "in" => TokenKind::In,
                    "forall" => TokenKind::Forall,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    _ => TokenKind::Ident(Symbol::intern(text)),
                };
                out.push(Token { kind, pos });
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{other}`"),
                    pos,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fun let in forall xs auto'"),
            vec![
                TokenKind::Fun,
                TokenKind::Let,
                TokenKind::In,
                TokenKind::Forall,
                TokenKind::Ident(Symbol::intern("xs")),
                TokenKind::Ident(Symbol::intern("auto'")),
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("-> :: : ++ + * ~ $ @ = . ,"),
            vec![
                TokenKind::Arrow,
                TokenKind::ColonColon,
                TokenKind::Colon,
                TokenKind::PlusPlus,
                TokenKind::Plus,
                TokenKind::Star,
                TokenKind::Tilde,
                TokenKind::Dollar,
                TokenKind::At,
                TokenKind::Eq,
                TokenKind::Dot,
                TokenKind::Comma,
            ]
        );
    }

    #[test]
    fn lexes_literals_and_brackets() {
        assert_eq!(
            kinds("[1, 42] (true false)"),
            vec![
                TokenKind::LBracket,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(42),
                TokenKind::RBracket,
                TokenKind::LParen,
                TokenKind::True,
                TokenKind::False,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("x -- comment -> ignored\ny"), kinds("x y"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("x ? y").is_err());
        assert!(lex("x # y").is_err());
        assert!(lex("x ; y").is_err(), "a lone `;` is not a token");
        assert!(lex("#1").is_err(), "pragma names are alphabetic");
    }

    #[test]
    fn lexes_program_surface_tokens() {
        assert_eq!(
            kinds("#use prelude let x = 1;;"),
            vec![
                TokenKind::Pragma("use".into()),
                TokenKind::Ident(Symbol::intern("prelude")),
                TokenKind::Let,
                TokenKind::Ident(Symbol::intern("x")),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::SemiSemi,
            ]
        );
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }
}
