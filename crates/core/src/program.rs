//! Top-level programs: sequences of `let` declarations.
//!
//! The paper evaluates single expressions, but FreezeML's home (the Links
//! implementation, §6) checks whole programs of top-level bindings. This
//! module gives the Rust reproduction the same surface:
//!
//! ```text
//! program ::= pragma* decl*
//! pragma  ::= '#use' ident                      -- e.g. `#use prelude`
//! decl    ::= 'let' binder '=' term ';;'
//! binder  ::= ident (':' type)? | '(' ident ':' type ')'
//! ```
//!
//! `--` comments are those of the expression surface. Every declaration
//! carries byte-offset [`Span`]s (the whole declaration and the bound
//! name) so downstream consumers — the program-checking service, the
//! conformance harness — can attach diagnostics to source locations.
//!
//! A declaration `let x = M;;` binds `x` for the *rest of the program*
//! with exactly the `let` rule's semantics: the scheme of `x` is the type
//! of `x` in `let x = M in ⌈x⌉` (generalised for guarded values,
//! monomorphised under the value restriction otherwise), and a later
//! `let x = …;;` shadows an earlier one. [`Decl::probe_term`] builds that
//! probe term.
//!
//! ```
//! use freezeml_core::parse_program;
//!
//! let p = parse_program(
//!     "#use prelude\n\
//!      let f = fun x -> x;;  -- generalised\n\
//!      let n : Int = f 3;;\n",
//! )
//! .unwrap();
//! assert_eq!(p.decls.len(), 2);
//! assert!(p.uses_prelude());
//! assert_eq!(p.decls[1].name.as_str(), "n");
//! ```

use crate::names::Var;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::types::Type;
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// The `line:col` (both 1-based) of the span's start in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.rfind('\n').map_or(self.start + 1, |i| self.start - i);
        (line, col)
    }
}

/// One top-level declaration `let x (: A)? = M;;`.
#[derive(Clone, Debug, PartialEq)]
pub struct Decl {
    /// The bound name (interned).
    pub name: Symbol,
    /// The annotation, for `let x : A = M;;` / `let (x : A) = M;;`.
    pub ann: Option<Type>,
    /// The right-hand side.
    pub term: Term,
    /// The whole declaration, `let` through `;;`.
    pub span: Span,
    /// Just the bound name.
    pub name_span: Span,
}

impl Decl {
    /// The probe term whose type *is* the declaration's scheme:
    /// `let x = M in ⌈x⌉` (or the annotated form). Checking the probe
    /// reuses the paper's `let` rule verbatim — generalisation for
    /// guarded values, demotion under the value restriction, annotation
    /// splitting and the escape check for annotated declarations.
    pub fn probe_term(&self) -> Term {
        let x = Var::from_symbol(self.name);
        match &self.ann {
            None => Term::Let(x, Box::new(self.term.clone()), Box::new(Term::FrozenVar(x))),
            Some(ann) => Term::LetAnn(
                x,
                ann.clone(),
                Box::new(self.term.clone()),
                Box::new(Term::FrozenVar(x)),
            ),
        }
    }

    /// The free term variables of the right-hand side — the names this
    /// declaration depends on (to be resolved against earlier
    /// declarations or the prelude).
    pub fn deps(&self) -> Vec<Var> {
        self.term.free_vars()
    }
}

impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ann {
            None => write!(f, "let {} = {};;", self.name, self.term),
            Some(ann) => write!(f, "let {} : {} = {};;", self.name, ann, self.term),
        }
    }
}

/// A parsed program: pragmas followed by declarations.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// `#name arg` pragmas in order, with their spans.
    pub pragmas: Vec<(String, String, Span)>,
    /// The declarations, in order.
    pub decls: Vec<Decl>,
}

impl Program {
    /// Does the program request the Figure 2 prelude (`#use prelude`)?
    pub fn uses_prelude(&self) -> bool {
        self.pragmas
            .iter()
            .any(|(name, arg, _)| name == "use" && arg == "prelude")
    }

    /// Pragmas other than the ones the checker understands
    /// (`#use prelude` is currently the only recognised pragma).
    pub fn unknown_pragmas(&self) -> Vec<(String, String, Span)> {
        self.pragmas
            .iter()
            .filter(|(name, arg, _)| !(name == "use" && arg == "prelude"))
            .cloned()
            .collect()
    }

    /// For each declaration, the index of the declaration each free
    /// variable of its right-hand side resolves to — the latest *earlier*
    /// declaration of that name (ML shadowing). Variables that resolve to
    /// no earlier declaration are the prelude's (or unbound) and are
    /// omitted. The result is deduplicated and sorted.
    pub fn resolved_deps(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.decls.len());
        for (i, d) in self.decls.iter().enumerate() {
            let mut deps: Vec<usize> = d
                .deps()
                .into_iter()
                .filter_map(|v| {
                    self.decls[..i]
                        .iter()
                        .rposition(|e| v.symbol() == Some(e.name))
                })
                .collect();
            deps.sort_unstable();
            deps.dedup();
            out.push(deps);
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, arg, _) in &self.pragmas {
            writeln!(f, "#{name} {arg}")?;
        }
        for d in &self.decls {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn parses_a_program_with_spans() {
        let src = "-- demo\nlet f = fun x -> x;;\nlet g : Int = f 3;;\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 2);
        let f = &p.decls[0];
        assert_eq!(f.name.as_str(), "f");
        assert_eq!(&src[f.span.start..f.span.end], "let f = fun x -> x;;");
        assert_eq!(&src[f.name_span.start..f.name_span.end], "f");
        assert_eq!(f.span.line_col(src), (2, 1));
        let g = &p.decls[1];
        assert_eq!(g.ann.as_ref().unwrap().to_string(), "Int");
        assert_eq!(g.span.line_col(src), (3, 1));
    }

    #[test]
    fn parenthesised_annotation_form_is_accepted() {
        let p = parse_program("let (f : forall a. a -> a) = fun x -> x;;").unwrap();
        assert_eq!(
            p.decls[0].ann.as_ref().unwrap().to_string(),
            "forall a. a -> a"
        );
    }

    #[test]
    fn pragmas_are_collected() {
        let p = parse_program("#use prelude\nlet x = 1;;").unwrap();
        assert!(p.uses_prelude());
        assert!(p.unknown_pragmas().is_empty());
        let q = parse_program("#use mystery\nlet x = 1;;").unwrap();
        assert!(!q.uses_prelude());
        assert_eq!(q.unknown_pragmas().len(), 1);
    }

    #[test]
    fn probe_terms_reuse_the_let_rule() {
        let p = parse_program("let f = fun x -> x;;\nlet g : Int -> Int = fun x -> x;;").unwrap();
        assert!(matches!(p.decls[0].probe_term(), Term::Let(_, _, _)));
        assert!(matches!(p.decls[1].probe_term(), Term::LetAnn(_, _, _, _)));
    }

    #[test]
    fn resolution_honours_shadowing() {
        let p = parse_program("let x = 1;;\nlet x = plus x 1;;\nlet y = plus x x;;\nlet z = 9;;")
            .unwrap();
        let deps = p.resolved_deps();
        assert_eq!(deps[0], Vec::<usize>::new());
        assert_eq!(deps[1], vec![0], "rhs `x` is the *previous* x");
        assert_eq!(deps[2], vec![1], "y sees the shadowing x");
        assert_eq!(deps[3], Vec::<usize>::new());
    }

    #[test]
    fn display_round_trips() {
        let src = "#use prelude\nlet f = fun x -> x;;\nlet g : Int = f 3;;\nlet h = poly ~f;;\n";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p.pragmas.len(), p2.pragmas.len());
        assert_eq!(p.decls.len(), p2.decls.len());
        for (a, b) in p.decls.iter().zip(&p2.decls) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.term, b.term);
            assert_eq!(a.ann, b.ann);
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = parse_program("let = 3;;").unwrap_err();
        assert!(e.to_string().contains("identifier"), "{e}");
        let e = parse_program("let x = 3").unwrap_err();
        assert!(e.to_string().contains(";;"), "{e}");
        let e = parse_program("let x = 3;; junk x;;").unwrap_err();
        assert!(e.to_string().contains("`let`"), "{e}");
    }

    #[test]
    fn line_col_is_one_based() {
        let s = Span { start: 0, end: 1 };
        assert_eq!(s.line_col("abc"), (1, 1));
        let s = Span { start: 4, end: 5 };
        assert_eq!(s.line_col("ab\ncd\n"), (2, 2));
        let s = Span { start: 6, end: 7 };
        assert_eq!(s.line_col("ab\ncd\nef"), (3, 1));
    }
}
