//! The three environments of the inference algorithm (§5.1):
//!
//! * [`KindEnv`] `∆` — *fixed* kind environments of rigid type variables,
//!   all implicitly of kind `•`;
//! * [`RefinedEnv`] `Θ` — *refined* kind environments of flexible type
//!   variables, each of kind `•` or `⋆`;
//! * [`TypeEnv`] `Γ` — type environments mapping term variables to types.
//!
//! All three preserve insertion order, which matters: `ftv` order determines
//! quantifier order under generalisation (§2 "Ordered Quantifiers").

use crate::error::TypeError;
use crate::kind::Kind;
use crate::names::{TyVar, Var};
use crate::types::Type;
use std::collections::HashSet;
use std::fmt;

/// A fixed kind environment `∆` of rigid (monomorphic) type variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindEnv {
    vars: Vec<TyVar>,
}

impl KindEnv {
    /// The empty environment `·`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is `a ∈ ∆`?
    pub fn contains(&self, a: &TyVar) -> bool {
        self.vars.contains(a)
    }

    /// Append a rigid variable. Returns an error if it is already present
    /// (concatenation `∆,a` requires disjointness).
    pub fn push(&mut self, a: TyVar) -> Result<(), TypeError> {
        if self.contains(&a) {
            return Err(TypeError::ShadowedTyVar { var: a });
        }
        self.vars.push(a);
        Ok(())
    }

    /// `∆,∆′` — the extension with the given variables (must be disjoint).
    pub fn extended<I: IntoIterator<Item = TyVar>>(&self, vars: I) -> Result<Self, TypeError> {
        let mut out = self.clone();
        for v in vars {
            out.push(v)?;
        }
        Ok(out)
    }

    /// Iterate over the variables in order.
    pub fn iter(&self) -> impl Iterator<Item = &TyVar> {
        self.vars.iter()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl FromIterator<TyVar> for KindEnv {
    fn from_iter<I: IntoIterator<Item = TyVar>>(iter: I) -> Self {
        let mut env = KindEnv::new();
        for v in iter {
            // Ignore duplicates when bulk-constructing.
            let _ = env.push(v);
        }
        env
    }
}

impl fmt::Display for KindEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// A refined kind environment `Θ` of flexible type variables (§5.1,
/// `KEnv ∋ Θ ::= · | Θ, a : K`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefinedEnv {
    entries: Vec<(TyVar, Kind)>,
}

impl RefinedEnv {
    /// The empty environment `·`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the kind of `a`, if bound.
    pub fn kind_of(&self, a: &TyVar) -> Option<Kind> {
        self.entries
            .iter()
            .rev()
            .find(|(v, _)| v == a)
            .map(|(_, k)| *k)
    }

    /// Is `a ∈ Θ`?
    pub fn contains(&self, a: &TyVar) -> bool {
        self.kind_of(a).is_some()
    }

    /// `Θ, a : K`.
    pub fn insert(&mut self, a: TyVar, k: Kind) {
        debug_assert!(!self.contains(&a), "duplicate flexible variable {a}");
        self.entries.push((a, k));
    }

    /// A copy extended with `a : K`.
    pub fn inserted(&self, a: TyVar, k: Kind) -> Self {
        let mut out = self.clone();
        out.insert(a, k);
        out
    }

    /// A copy with `a` removed (`Θ − a`).
    pub fn without(&self, a: &TyVar) -> Self {
        RefinedEnv {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| v != a)
                .cloned()
                .collect(),
        }
    }

    /// `Θ − ∆′` — remove all listed variables.
    pub fn minus(&self, vars: &[TyVar]) -> Self {
        RefinedEnv {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| !vars.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// `demote(•, Θ, ∆′)` — set the kind of every listed variable to `•`
    /// (Figure 15). Variables not present are ignored.
    pub fn demoted(&self, vars: &[TyVar]) -> Self {
        RefinedEnv {
            entries: self
                .entries
                .iter()
                .map(|(v, k)| {
                    if vars.contains(v) {
                        (*v, Kind::Mono)
                    } else {
                        (*v, *k)
                    }
                })
                .collect(),
        }
    }

    /// Iterate over entries in order.
    pub fn iter(&self) -> impl Iterator<Item = (&TyVar, Kind)> {
        self.entries.iter().map(|(v, k)| (v, *k))
    }

    /// The variables in order.
    pub fn vars(&self) -> impl Iterator<Item = &TyVar> {
        self.entries.iter().map(|(v, _)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(TyVar, Kind)> for RefinedEnv {
    fn from_iter<I: IntoIterator<Item = (TyVar, Kind)>>(iter: I) -> Self {
        let mut env = RefinedEnv::new();
        for (v, k) in iter {
            env.insert(v, k);
        }
        env
    }
}

impl fmt::Display for RefinedEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (v, k)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} : {k}")?;
        }
        Ok(())
    }
}

/// A type environment `Γ` mapping term variables to types. Later bindings
/// shadow earlier ones.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypeEnv {
    entries: Vec<(Var, Type)>,
}

impl TypeEnv {
    /// The empty environment `·`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `x : A ∈ Γ` (innermost binding).
    pub fn lookup(&self, x: &Var) -> Option<&Type> {
        self.entries
            .iter()
            .rev()
            .find(|(v, _)| v == x)
            .map(|(_, t)| t)
    }

    /// Bind `x : A`.
    pub fn push(&mut self, x: impl Into<Var>, ty: Type) {
        self.entries.push((x.into(), ty));
    }

    /// Bind `x` to a type parsed from source text (convenience for building
    /// preludes).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParseError`] if the type does not parse.
    pub fn push_str(&mut self, x: &str, ty_src: &str) -> Result<(), crate::parser::ParseError> {
        let ty = crate::parser::parse_type(ty_src)?;
        self.push(x, ty);
        Ok(())
    }

    /// A copy extended with `x : A` (`Γ, x : A`).
    pub fn extended(&self, x: impl Into<Var>, ty: Type) -> Self {
        let mut out = self.clone();
        out.push(x, ty);
        out
    }

    /// Iterate over bindings in order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Type)> {
        self.entries.iter().map(|(v, t)| (v, t))
    }

    /// Map a function over all types (used to apply substitutions, `θ(Γ)`).
    pub fn map_types(&self, mut f: impl FnMut(&Type) -> Type) -> Self {
        TypeEnv {
            entries: self.entries.iter().map(|(v, t)| (*v, f(t))).collect(),
        }
    }

    /// The ordered distinct free type variables of all types in `Γ`.
    pub fn ftv(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for (_, t) in &self.entries {
            for v in t.ftv() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(Var, Type)> for TypeEnv {
    fn from_iter<I: IntoIterator<Item = (Var, Type)>>(iter: I) -> Self {
        TypeEnv {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_env_rejects_duplicates() {
        let mut d = KindEnv::new();
        d.push(TyVar::named("a")).unwrap();
        assert!(d.push(TyVar::named("a")).is_err());
        assert!(d.contains(&TyVar::named("a")));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn refined_env_demote_and_minus() {
        let a = TyVar::named("a");
        let b = TyVar::named("b");
        let th: RefinedEnv = [(a, Kind::Poly), (b, Kind::Poly)].into_iter().collect();
        let d = th.demoted(std::slice::from_ref(&a));
        assert_eq!(d.kind_of(&a), Some(Kind::Mono));
        assert_eq!(d.kind_of(&b), Some(Kind::Poly));
        let m = th.minus(std::slice::from_ref(&a));
        assert!(!m.contains(&a));
        assert!(m.contains(&b));
        assert_eq!(th.without(&b).len(), 1);
    }

    #[test]
    fn type_env_shadowing() {
        let mut g = TypeEnv::new();
        g.push("x", Type::int());
        g.push("x", Type::bool());
        assert_eq!(g.lookup(&Var::named("x")), Some(&Type::bool()));
        assert_eq!(g.lookup(&Var::named("y")), None);
    }

    #[test]
    fn type_env_ftv_ordered() {
        let mut g = TypeEnv::new();
        g.push("x", Type::arrow(Type::var("b"), Type::var("a")));
        g.push("y", Type::var("b"));
        let names: Vec<String> = g.ftv().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn push_str_parses() {
        let mut g = TypeEnv::new();
        g.push_str("id", "forall a. a -> a").unwrap();
        assert!(g.lookup(&Var::named("id")).is_some());
        assert!(g.push_str("bad", "forall ->").is_err());
    }
}
