//! # FreezeML core
//!
//! A faithful implementation of **FreezeML** — the type system and inference
//! algorithm from *"FreezeML: Complete and Easy Type Inference for First-Class
//! Polymorphism"* (Emrich, Lindley, Stolarek, Cheney, Coates; PLDI 2020).
//!
//! FreezeML conservatively extends ML with the full type language of System F:
//!
//! * **frozen variables** `⌈x⌉` (ASCII: `~x`) suppress the implicit
//!   instantiation that ML performs at every variable occurrence;
//! * **annotated binders** `λ(x : A).M` and `let (x : A) = M in N` allow
//!   arbitrary System F types at binding sites;
//! * the `let` rule assigns **principal types** only, which makes type
//!   inference sound *and complete* (paper Theorems 6 and 7);
//! * explicit generalisation `$V` and instantiation `M@` are macro-expressible
//!   sugar (paper §2) and are provided by [`Term::gen`] and [`Term::inst`].
//!
//! The crate implements every system in the paper's Figures 3–16: kinds,
//! kinding, well-scopedness, type instantiations and substitutions,
//! unification with kind-directed demotion, and the Algorithm-W-style
//! inference algorithm, plus a parser and pretty-printer for the ASCII
//! rendering used by the Links implementation (paper §6).
//!
//! ## Quickstart
//!
//! ```
//! use freezeml_core::{infer_program, Options, TypeEnv, parse_type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut env = TypeEnv::new();
//! env.push_str("poly", "(forall a. a -> a) -> Int * Bool")?;
//!
//! // `$(fun x -> x)` generalises the identity to `forall a. a -> a`,
//! // which `poly` accepts (paper example A11).
//! let ty = infer_program(&env, "poly $(fun x -> x)", &Options::default())?;
//! assert!(ty.alpha_eq(&parse_type("Int * Bool")?));
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod env;
pub mod error;
pub mod infer;
pub mod kind;
pub mod kinding;
pub mod lexer;
pub mod names;
pub mod options;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod scope;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod tycon;
pub mod typed;
pub mod types;
pub mod unify;

pub use check::{check_typing, matches};
pub use env::{KindEnv, RefinedEnv, TypeEnv};
pub use error::TypeError;
pub use infer::{infer, infer_program, infer_term, InferOutput, ProgramError};
pub use kind::Kind;
pub use names::{TyVar, Var};
pub use options::{InstantiationStrategy, Options};
pub use parser::{parse_program, parse_term, parse_type, ParseError};
pub use program::{Decl, Program, Span};
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::{Lit, Term};
pub use tycon::TyCon;
pub use typed::{TypedNode, TypedTerm};
pub use types::Type;
pub use unify::unify;
