//! The declarative typing relation, decided via the algorithm.
//!
//! The paper's typing rules (Figure 7) contain a negative occurrence of the
//! typing relation inside the `principal` side-condition; Appendix C shows
//! the relation is nevertheless well-defined by stratification (`J⟦−⟧`).
//! Computationally, Theorem 7 characterises the derivable judgements
//! exactly:
//!
//! > `∆, Θ′; θ(Γ) ⊢ M : A` holds iff `infer` succeeds with `(Θ′′, θ′, A′)`
//! > and `A = θ′′(A′)` for some kind-respecting `θ′′ : Θ′′ ⇒ Θ′`.
//!
//! So [`check_typing`] runs inference and then *matches* the candidate type
//! against the inferred one with a one-sided, kind-respecting substitution
//! ([`matches()`](matches())): `•`-kinded flexible variables may only be instantiated by
//! monotypes, and quantifier-bound variables must not escape.

use crate::env::{KindEnv, RefinedEnv, TypeEnv};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::names::TyVar;
use crate::options::Options;
use crate::subst::Subst;
use crate::term::Term;
use crate::types::Type;
use fxhash::FxHashMap;

/// One-sided matching: find a substitution `θ` on the flexible variables of
/// `Θ` with `θ(pattern) = target` (up to α-equivalence), respecting kinds.
/// Returns `None` if no such substitution exists.
///
/// Variables free in `target` but unknown to `∆`/`Θ` are treated as rigid
/// constants (they play the role of the target typing's own environment).
pub fn matches(
    delta: &KindEnv,
    theta: &RefinedEnv,
    pattern: &Type,
    target: &Type,
) -> Option<Subst> {
    let _ = delta; // rigidity is implied by absence from Θ
    let mut bindings: FxHashMap<TyVar, Type> = FxHashMap::default();
    let mut scope: Vec<TyVar> = Vec::new();
    if go(pattern, target, theta, &mut bindings, &mut scope) {
        Some(Subst::from_pairs(bindings))
    } else {
        None
    }
}

fn go(
    pattern: &Type,
    target: &Type,
    theta: &RefinedEnv,
    bindings: &mut FxHashMap<TyVar, Type>,
    scope: &mut Vec<TyVar>,
) -> bool {
    match (pattern, target) {
        (Type::Var(x), t) if theta.contains(x) && !scope.contains(x) => {
            if let Some(prev) = bindings.get(x) {
                return prev.alpha_eq(t);
            }
            // A binding may not capture quantifier-bound (skolemised)
            // variables of the enclosing scope.
            if t.ftv().iter().any(|v| scope.contains(v)) {
                return false;
            }
            if theta.kind_of(x) == Some(Kind::Mono) && !t.is_monotype() {
                return false;
            }
            bindings.insert(*x, t.clone());
            true
        }
        (Type::Var(x), Type::Var(y)) => x == y,
        (Type::Con(c, xs), Type::Con(d, ys)) => {
            c == d
                && xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| go(x, y, theta, bindings, scope))
        }
        (Type::Forall(x, pb), Type::Forall(y, tb)) => {
            let c = TyVar::skolem();
            let p2 = pb.rename_free(x, &Type::Var(c));
            let t2 = tb.rename_free(y, &Type::Var(c));
            scope.push(c);
            let r = go(&p2, &t2, theta, bindings, scope);
            scope.pop();
            r
        }
        _ => false,
    }
}

/// Decide the declarative judgement `∆; Γ ⊢ M : A` (Figure 7, via the
/// stratified definition of Appendix C and Theorem 7).
///
/// Free variables of `ty` that are not in `delta` are treated as rigid.
///
/// # Errors
///
/// Returns an error only for ill-*scoped* terms or malformed environments;
/// an ill-typed term yields `Ok(false)`.
pub fn check_typing(
    delta: &KindEnv,
    gamma: &TypeEnv,
    term: &Term,
    ty: &Type,
    opts: &Options,
) -> Result<bool, TypeError> {
    crate::scope::well_scoped(delta, term, opts)?;
    let theta0 = RefinedEnv::new();
    crate::kinding::check_env(delta, &theta0, gamma)?;
    let (theta, subst, inferred, _) = match crate::infer::infer(delta, &theta0, gamma, term, opts) {
        Ok(r) => r,
        Err(_) => return Ok(false), // complete: no inference ⇒ no typing
    };
    let resolved = subst.apply(&inferred);
    Ok(matches(delta, &theta, &resolved, ty).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_term, parse_type};

    fn env() -> TypeEnv {
        let mut g = TypeEnv::new();
        g.push_str("id", "forall a. a -> a").unwrap();
        g.push_str("choose", "forall a. a -> a -> a").unwrap();
        g.push_str("ids", "List (forall a. a -> a)").unwrap();
        g.push_str("single", "forall a. a -> List a").unwrap();
        g
    }

    fn holds(src: &str, ty: &str) -> bool {
        let term = parse_term(src).unwrap();
        let ty = parse_type(ty).unwrap();
        let delta: KindEnv = ty.ftv().into_iter().filter(|v| v.is_named()).collect();
        check_typing(&delta, &env(), &term, &ty, &Options::default()).unwrap()
    }

    #[test]
    fn instances_of_principal_type_are_derivable() {
        assert!(holds("fun x -> x", "a -> a"));
        assert!(holds("fun x -> x", "Int -> Int"));
        assert!(holds("fun x -> x", "List Int -> List Int"));
        assert!(!holds("fun x -> x", "Int -> Bool"));
        assert!(!holds("fun x -> x", "a -> b"));
    }

    #[test]
    fn mono_flexibles_only_take_monotypes() {
        // λx.x : (∀a.a→a) → (∀a.a→a) is NOT derivable — the parameter
        // variable has kind • (never guess polymorphism).
        assert!(!holds(
            "fun x -> x",
            "(forall a. a -> a) -> forall a. a -> a"
        ));
    }

    #[test]
    fn frozen_variable_type_is_exact() {
        assert!(holds("~id", "forall a. a -> a"));
        assert!(!holds("~id", "Int -> Int"));
        assert!(!holds("~id", "forall a b. a -> a"));
    }

    #[test]
    fn poly_flexibles_take_polytypes() {
        // single id : List (a → a) for any a, and the var is ⋆-kinded...
        assert!(holds("single ~id", "List (forall a. a -> a)"));
        assert!(holds("single id", "List (Int -> Int)"));
    }

    #[test]
    fn value_restriction_blocks_poly_instances() {
        // single id's element var is ⋆-kinded *during* inference, but the
        // derivable types instantiate a → a; List (∀a.a→a) needs the frozen
        // form.
        assert!(!holds("single id", "List (forall a. a -> a)"));
    }

    #[test]
    fn bound_variables_do_not_escape_into_bindings() {
        // choose id : (b→b) → (b→b); matching against ∀b.(b→b)→(b→b)
        // would require the flexible var to capture the bound b.
        assert!(!holds("choose id", "forall b. (b -> b) -> b -> b"));
        assert!(holds("choose id", "(b -> b) -> b -> b"));
        assert!(holds("choose id", "(Int -> Int) -> Int -> Int"));
    }

    #[test]
    fn matches_is_consistent_on_repeats() {
        let a = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Poly)].into_iter().collect();
        let pat = Type::arrow(Type::Var(a), Type::Var(a));
        let t_ok = Type::arrow(Type::int(), Type::int());
        let t_bad = Type::arrow(Type::int(), Type::bool());
        assert!(matches(&KindEnv::new(), &th, &pat, &t_ok).is_some());
        assert!(matches(&KindEnv::new(), &th, &pat, &t_bad).is_none());
    }

    #[test]
    fn matches_respects_kinds() {
        let a = TyVar::fresh();
        let poly_ty = parse_type("forall b. b -> b").unwrap();
        let th_mono: RefinedEnv = [(a, Kind::Mono)].into_iter().collect();
        let th_poly: RefinedEnv = [(a, Kind::Poly)].into_iter().collect();
        let pat = Type::Var(a);
        assert!(matches(&KindEnv::new(), &th_mono, &pat, &poly_ty).is_none());
        assert!(matches(&KindEnv::new(), &th_poly, &pat, &poly_ty).is_some());
    }

    #[test]
    fn matched_substitution_proves_equality() {
        let a = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Poly)].into_iter().collect();
        let pat = Type::list(Type::Var(a));
        let tgt = parse_type("List (forall a. a -> a)").unwrap();
        let s = matches(&KindEnv::new(), &th, &pat, &tgt).unwrap();
        assert!(s.apply(&pat).alpha_eq(&tgt));
    }
}
