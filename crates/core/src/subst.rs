//! Type substitutions `θ` (Figure 13) and type instantiations `δ` (Figure 5).
//!
//! Both are finite maps from type variables to types; they differ only in
//! which variables they may touch (flexible `Θ`-variables vs. rigid
//! `∆`-variables) and what kinds they must respect — properties that are
//! maintained by the algorithms, not by this data type. Application is
//! capture-avoiding (Figure 6) and composition satisfies
//! `(θ ∘ θ′)(A) = θ(θ′(A))`.

use crate::env::{RefinedEnv, TypeEnv};
use crate::names::TyVar;
use crate::types::Type;
use fxhash::FxHashMap;
use std::fmt;

/// A finite map from type variables to types, acting as the identity
/// elsewhere. Keys are `Copy` interned variables, so the map hashes two
/// machine words per probe.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subst {
    map: FxHashMap<TyVar, Type>,
}

impl Subst {
    /// The identity substitution `ι`.
    pub fn identity() -> Self {
        Self::default()
    }

    /// The substitution `[a ↦ A]`.
    pub fn singleton(a: TyVar, ty: Type) -> Self {
        let mut map = FxHashMap::default();
        map.insert(a, ty);
        Subst { map }
    }

    /// Build a substitution from pairs. Later pairs overwrite earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (TyVar, Type)>>(pairs: I) -> Self {
        Subst {
            map: pairs.into_iter().collect(),
        }
    }

    /// Is this (extensionally) the identity map?
    pub fn is_identity(&self) -> bool {
        self.map
            .iter()
            .all(|(a, t)| matches!(t, Type::Var(b) if b == a))
    }

    /// The binding for `a`, if explicitly present.
    pub fn get(&self, a: &TyVar) -> Option<&Type> {
        self.map.get(a)
    }

    /// `θ(a)` — the image of a variable (the variable itself if unmapped).
    pub fn image_of(&self, a: &TyVar) -> Type {
        self.map.get(a).cloned().unwrap_or(Type::Var(*a))
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the map empty (definitely the identity)?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The explicit domain, in no particular order.
    pub fn domain(&self) -> impl Iterator<Item = &TyVar> {
        self.map.keys()
    }

    /// A copy with the binding for `a` removed. Used to realise the
    /// pattern-match `θ[a ↦ S]` of Figure 16 (λ and application cases).
    pub fn without(&self, a: &TyVar) -> Self {
        let mut out = self.clone();
        out.map.remove(a);
        out
    }

    /// `θ(A)` — capture-avoiding application (Figure 6).
    pub fn apply(&self, t: &Type) -> Type {
        if self.map.is_empty() {
            return t.clone();
        }
        self.apply_under(t, &mut Vec::new())
    }

    /// Application with the listed domain variables *shadowed* (they are
    /// binders of enclosing `∀`s, so their mappings are inert here).
    fn apply_under(&self, t: &Type, shadowed: &mut Vec<TyVar>) -> Type {
        match t {
            Type::Var(a) => {
                if shadowed.contains(a) {
                    t.clone()
                } else {
                    self.image_of(a)
                }
            }
            Type::Con(c, args) => Type::Con(
                *c,
                args.iter().map(|t| self.apply_under(t, shadowed)).collect(),
            ),
            Type::Forall(a, body) => {
                // A capture threatens only when some *other*, unshadowed
                // mapping's image mentions the binder while its domain
                // variable is free in the body; a binding *for* the
                // binder itself is simply shadowed (keep the binder's
                // name — gratuitous renaming here would leak into
                // canonicalised output).
                let captures = self.map.iter().any(|(k, v)| {
                    k != a && !shadowed.contains(k) && v.occurs_free(a) && body.occurs_free(k)
                });
                if captures {
                    let c = TyVar::fresh();
                    let body2 = body.rename_free(a, &Type::Var(c));
                    Type::Forall(c, Box::new(self.apply_under(&body2, shadowed)))
                } else if self.map.contains_key(a) {
                    shadowed.push(*a);
                    let out = Type::Forall(*a, Box::new(self.apply_under(body, shadowed)));
                    shadowed.pop();
                    out
                } else {
                    Type::Forall(*a, Box::new(self.apply_under(body, shadowed)))
                }
            }
        }
    }

    /// `θ(Γ)` — apply to every type in a type environment.
    pub fn apply_env(&self, g: &TypeEnv) -> TypeEnv {
        if self.map.is_empty() {
            return g.clone();
        }
        g.map_types(|t| self.apply(t))
    }

    /// `self ∘ inner` — composition: `(self ∘ inner)(A) = self(inner(A))`.
    pub fn compose(&self, inner: &Subst) -> Subst {
        let mut map: FxHashMap<TyVar, Type> =
            inner.map.iter().map(|(a, t)| (*a, self.apply(t))).collect();
        for (a, t) in &self.map {
            map.entry(*a).or_insert_with(|| t.clone());
        }
        Subst { map }
    }

    /// `ftv(θ)` relative to a domain environment `Θ` (paper Appendix G):
    /// the ordered distinct free variables of `θ(a₁) → … → θ(aₙ)` for
    /// `Θ = a₁:K₁, …, aₙ:Kₙ`. Unmapped variables contribute themselves.
    pub fn range_ftv(&self, domain: &RefinedEnv) -> Vec<TyVar> {
        let mut out = Vec::new();
        let mut seen = fxhash::FxHashSet::default();
        for a in domain.vars() {
            for v in self.image_of(a).ftv() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Does any *mapped* image mention `v`? (Used for the skolem-escape
    /// check of Figure 15; identity images cannot mention a fresh skolem.)
    pub fn range_mentions(&self, v: &TyVar) -> bool {
        self.map.values().any(|t| t.occurs_free(v))
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(a, _)| *a);
        write!(f, "{{")?;
        for (i, (a, t)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a} ↦ {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> TyVar {
        TyVar::named("a")
    }
    fn b() -> TyVar {
        TyVar::named("b")
    }

    #[test]
    fn identity_applies_as_identity() {
        let t = Type::arrow(Type::var("a"), Type::int());
        assert_eq!(Subst::identity().apply(&t), t);
        assert!(Subst::identity().is_identity());
    }

    #[test]
    fn singleton_applies() {
        let s = Subst::singleton(a(), Type::int());
        let t = Type::arrow(Type::var("a"), Type::var("b"));
        assert_eq!(s.apply(&t), Type::arrow(Type::int(), Type::var("b")));
    }

    #[test]
    fn bound_occurrences_untouched() {
        let s = Subst::singleton(a(), Type::int());
        let t = Type::foralls([a()], Type::var("a"));
        assert!(s.apply(&t).alpha_eq(&t));
    }

    #[test]
    fn capture_is_avoided() {
        // [b ↦ a](∀a. b → a)  must be  ∀c. a → c, not ∀a. a → a.
        let s = Subst::singleton(b(), Type::var("a"));
        let t = Type::foralls([a()], Type::arrow(Type::var("b"), Type::var("a")));
        let r = s.apply(&t);
        let expect = Type::foralls(
            [TyVar::named("c")],
            Type::arrow(Type::var("a"), Type::var("c")),
        );
        assert!(r.alpha_eq(&expect));
    }

    #[test]
    fn compose_is_application_composition() {
        // θ = [b ↦ Int], θ' = [a ↦ b → b]; (θ ∘ θ')(a) = Int → Int.
        let th = Subst::singleton(b(), Type::int());
        let thp = Subst::singleton(a(), Type::arrow(Type::var("b"), Type::var("b")));
        let c = th.compose(&thp);
        let t = Type::var("a");
        assert_eq!(c.apply(&t), th.apply(&thp.apply(&t)));
        assert_eq!(c.apply(&t), Type::arrow(Type::int(), Type::int()));
        // θ's own binding is kept for vars outside θ''s domain.
        assert_eq!(c.apply(&Type::var("b")), Type::int());
    }

    #[test]
    fn range_ftv_ordered_with_identity_entries() {
        use crate::kind::Kind;
        let th: RefinedEnv = [(a(), Kind::Mono), (b(), Kind::Mono)].into_iter().collect();
        let s = Subst::singleton(b(), Type::arrow(Type::var("c"), Type::var("a")));
        let names: Vec<String> = s.range_ftv(&th).iter().map(|v| v.to_string()).collect();
        // θ(a) = a contributes a first; θ(b) contributes c (a already seen).
        assert_eq!(names, ["a", "c"]);
    }

    #[test]
    fn without_removes_binding() {
        let s = Subst::singleton(a(), Type::int());
        assert!(s.without(&a()).is_empty());
        assert_eq!(s.without(&b()).len(), 1);
    }

    #[test]
    fn range_mentions_only_mapped() {
        let s = Subst::singleton(a(), Type::arrow(Type::var("c"), Type::int()));
        assert!(s.range_mentions(&TyVar::named("c")));
        assert!(!s.range_mentions(&b()));
    }
}
