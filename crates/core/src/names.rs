//! Type- and term-variable names.
//!
//! The paper works with a single namespace of type variables, distinguishing
//! *rigid* (eigen-) variables from *flexible* (unification) variables by the
//! environment they live in (`∆` vs `Θ`, §5.1). We additionally distinguish
//! them syntactically so that fresh names can never collide with source
//! names:
//!
//! * [`TyVar::named`] — variables written by the programmer (`a`, `b`, `s`);
//! * [`TyVar::fresh`] — flexible variables invented by inference, printed
//!   `%0`, `%1`, …;
//! * [`TyVar::skolem`] — rigid variables invented by unification of
//!   quantified types (Figure 15), printed `!0`, `!1`, ….
//!
//! `%` and `!` are not identifier characters in the surface syntax, so
//! invented names are unparseable and capture-free by construction.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A type variable.
///
/// Cheap to clone (named variables share an [`Arc`]); ordered and hashable so
/// it can key environment maps.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyVar(Repr);

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Repr {
    Named(Arc<str>),
    Fresh(u64),
    Skolem(u64),
}

impl TyVar {
    /// A source-level type variable with the given name.
    pub fn named(name: impl AsRef<str>) -> Self {
        TyVar(Repr::Named(Arc::from(name.as_ref())))
    }

    /// A globally fresh flexible type variable (used by inference, §5.1).
    pub fn fresh() -> Self {
        TyVar(Repr::Fresh(next_id()))
    }

    /// A globally fresh rigid (skolem) type variable (used when unifying
    /// quantified types, Figure 15).
    pub fn skolem() -> Self {
        TyVar(Repr::Skolem(next_id()))
    }

    /// `true` for variables created by [`TyVar::named`].
    pub fn is_named(&self) -> bool {
        matches!(self.0, Repr::Named(_))
    }

    /// `true` for variables created by [`TyVar::fresh`].
    pub fn is_fresh(&self) -> bool {
        matches!(self.0, Repr::Fresh(_))
    }

    /// `true` for variables created by [`TyVar::skolem`].
    pub fn is_skolem(&self) -> bool {
        matches!(self.0, Repr::Skolem(_))
    }

    /// The source name, if this is a named variable.
    pub fn name(&self) -> Option<&str> {
        match &self.0 {
            Repr::Named(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Repr::Named(s) => write!(f, "{s}"),
            Repr::Fresh(n) => write!(f, "%{n}"),
            Repr::Skolem(n) => write!(f, "!{n}"),
        }
    }
}

impl fmt::Debug for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TyVar({self})")
    }
}

impl From<&str> for TyVar {
    fn from(s: &str) -> Self {
        TyVar::named(s)
    }
}

/// A term variable.
///
/// Fresh term variables (printed `$0`, `$1`, …) are used when desugaring the
/// generalisation (`$V`) and instantiation (`M@`) operators of §2.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(VRepr);

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum VRepr {
    Named(Arc<str>),
    Fresh(u64),
}

impl Var {
    /// A source-level term variable.
    pub fn named(name: impl AsRef<str>) -> Self {
        Var(VRepr::Named(Arc::from(name.as_ref())))
    }

    /// A globally fresh term variable for desugaring.
    pub fn fresh() -> Self {
        Var(VRepr::Fresh(next_id()))
    }

    /// The source name, if any.
    pub fn name(&self) -> Option<&str> {
        match &self.0 {
            VRepr::Named(s) => Some(s),
            VRepr::Fresh(_) => None,
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            VRepr::Named(s) => write!(f, "{s}"),
            VRepr::Fresh(n) => write!(f, "${n}"),
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({self})")
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::named(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_tyvars_equal_by_name() {
        assert_eq!(TyVar::named("a"), TyVar::named("a"));
        assert_ne!(TyVar::named("a"), TyVar::named("b"));
    }

    #[test]
    fn fresh_tyvars_are_distinct() {
        assert_ne!(TyVar::fresh(), TyVar::fresh());
        assert_ne!(TyVar::skolem(), TyVar::skolem());
    }

    #[test]
    fn fresh_never_equals_named() {
        let f = TyVar::fresh();
        let n = TyVar::named(format!("{f}"));
        assert_ne!(f, n);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(TyVar::named("abc").to_string(), "abc");
        assert!(TyVar::fresh().to_string().starts_with('%'));
        assert!(TyVar::skolem().to_string().starts_with('!'));
        assert!(Var::fresh().to_string().starts_with('$'));
    }

    #[test]
    fn predicates() {
        assert!(TyVar::named("a").is_named());
        assert!(TyVar::fresh().is_fresh());
        assert!(TyVar::skolem().is_skolem());
        assert_eq!(TyVar::named("a").name(), Some("a"));
        assert_eq!(TyVar::fresh().name(), None);
    }

    #[test]
    fn var_basics() {
        assert_eq!(Var::named("x"), Var::named("x"));
        assert_ne!(Var::fresh(), Var::fresh());
        assert_eq!(Var::named("x").name(), Some("x"));
    }
}
