//! Type- and term-variable names.
//!
//! The paper works with a single namespace of type variables, distinguishing
//! *rigid* (eigen-) variables from *flexible* (unification) variables by the
//! environment they live in (`∆` vs `Θ`, §5.1). We additionally distinguish
//! them syntactically so that fresh names can never collide with source
//! names:
//!
//! * [`TyVar::named`] — variables written by the programmer (`a`, `b`, `s`);
//! * [`TyVar::fresh`] — flexible variables invented by inference, printed
//!   `%0`, `%1`, …;
//! * [`TyVar::skolem`] — rigid variables invented by unification of
//!   quantified types (Figure 15), printed `!0`, `!1`, ….
//!
//! `%` and `!` are not identifier characters in the surface syntax, so
//! invented names are unparseable and capture-free by construction.
//!
//! Named variables carry a [`Symbol`] — an index into the process-wide
//! symbol table ([`crate::symbol`]) — so a `TyVar` is `Copy`, equality is
//! an integer comparison, and hashing is one multiply. This is the
//! representation the whole inference hot path (environment lookups,
//! substitution maps, the union-find store) keys on.

use crate::symbol::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A type variable.
///
/// `Copy` (named variables are interned [`Symbol`]s); ordered and hashable
/// so it can key environment maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TyVar(Repr);

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    Named(Symbol),
    Fresh(u64),
    Skolem(u64),
}

impl TyVar {
    /// A source-level type variable with the given name.
    pub fn named(name: impl AsRef<str>) -> Self {
        TyVar(Repr::Named(Symbol::intern(name.as_ref())))
    }

    /// A source-level type variable from an already-interned symbol.
    pub fn from_symbol(sym: Symbol) -> Self {
        TyVar(Repr::Named(sym))
    }

    /// A globally fresh flexible type variable (used by inference, §5.1).
    pub fn fresh() -> Self {
        TyVar(Repr::Fresh(next_id()))
    }

    /// A globally fresh rigid (skolem) type variable (used when unifying
    /// quantified types, Figure 15).
    pub fn skolem() -> Self {
        TyVar(Repr::Skolem(next_id()))
    }

    /// `true` for variables created by [`TyVar::named`].
    pub fn is_named(&self) -> bool {
        matches!(self.0, Repr::Named(_))
    }

    /// `true` for variables created by [`TyVar::fresh`].
    pub fn is_fresh(&self) -> bool {
        matches!(self.0, Repr::Fresh(_))
    }

    /// `true` for variables created by [`TyVar::skolem`].
    pub fn is_skolem(&self) -> bool {
        matches!(self.0, Repr::Skolem(_))
    }

    /// The source name, if this is a named variable.
    pub fn name(&self) -> Option<&'static str> {
        match self.0 {
            Repr::Named(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The interned symbol, if this is a named variable.
    pub fn symbol(&self) -> Option<Symbol> {
        match self.0 {
            Repr::Named(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialOrd for TyVar {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TyVar {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Named < Fresh < Skolem, with named variables in lexicographic
        // order (matching the pre-interning representation, so sorted
        // displays stay alphabetical).
        match (&self.0, &other.0) {
            (Repr::Named(a), Repr::Named(b)) => a.as_str().cmp(b.as_str()),
            (Repr::Named(_), _) => std::cmp::Ordering::Less,
            (_, Repr::Named(_)) => std::cmp::Ordering::Greater,
            (Repr::Fresh(a), Repr::Fresh(b)) => a.cmp(b),
            (Repr::Fresh(_), _) => std::cmp::Ordering::Less,
            (_, Repr::Fresh(_)) => std::cmp::Ordering::Greater,
            (Repr::Skolem(a), Repr::Skolem(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::Named(s) => write!(f, "{s}"),
            Repr::Fresh(n) => write!(f, "%{n}"),
            Repr::Skolem(n) => write!(f, "!{n}"),
        }
    }
}

impl fmt::Debug for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TyVar({self})")
    }
}

impl From<&str> for TyVar {
    fn from(s: &str) -> Self {
        TyVar::named(s)
    }
}

impl From<Symbol> for TyVar {
    fn from(s: Symbol) -> Self {
        TyVar::from_symbol(s)
    }
}

/// A term variable.
///
/// Fresh term variables (printed `$0`, `$1`, …) are used when desugaring the
/// generalisation (`$V`) and instantiation (`M@`) operators of §2.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(VRepr);

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum VRepr {
    Named(Symbol),
    Fresh(u64),
}

impl Var {
    /// A source-level term variable.
    pub fn named(name: impl AsRef<str>) -> Self {
        Var(VRepr::Named(Symbol::intern(name.as_ref())))
    }

    /// A source-level term variable from an already-interned symbol.
    pub fn from_symbol(sym: Symbol) -> Self {
        Var(VRepr::Named(sym))
    }

    /// A globally fresh term variable for desugaring.
    pub fn fresh() -> Self {
        Var(VRepr::Fresh(next_id()))
    }

    /// The source name, if any.
    pub fn name(&self) -> Option<&'static str> {
        match self.0 {
            VRepr::Named(s) => Some(s.as_str()),
            VRepr::Fresh(_) => None,
        }
    }

    /// The interned symbol, if this is a named variable.
    pub fn symbol(&self) -> Option<Symbol> {
        match self.0 {
            VRepr::Named(s) => Some(s),
            VRepr::Fresh(_) => None,
        }
    }
}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Var {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (&self.0, &other.0) {
            (VRepr::Named(a), VRepr::Named(b)) => a.as_str().cmp(b.as_str()),
            (VRepr::Named(_), VRepr::Fresh(_)) => std::cmp::Ordering::Less,
            (VRepr::Fresh(_), VRepr::Named(_)) => std::cmp::Ordering::Greater,
            (VRepr::Fresh(a), VRepr::Fresh(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            VRepr::Named(s) => write!(f, "{s}"),
            VRepr::Fresh(n) => write!(f, "${n}"),
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({self})")
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::named(s)
    }
}

impl From<Symbol> for Var {
    fn from(s: Symbol) -> Self {
        Var::from_symbol(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_tyvars_equal_by_name() {
        assert_eq!(TyVar::named("a"), TyVar::named("a"));
        assert_ne!(TyVar::named("a"), TyVar::named("b"));
    }

    #[test]
    fn fresh_tyvars_are_distinct() {
        assert_ne!(TyVar::fresh(), TyVar::fresh());
        assert_ne!(TyVar::skolem(), TyVar::skolem());
    }

    #[test]
    fn fresh_never_equals_named() {
        let f = TyVar::fresh();
        let n = TyVar::named(format!("{f}"));
        assert_ne!(f, n);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(TyVar::named("abc").to_string(), "abc");
        assert!(TyVar::fresh().to_string().starts_with('%'));
        assert!(TyVar::skolem().to_string().starts_with('!'));
        assert!(Var::fresh().to_string().starts_with('$'));
    }

    #[test]
    fn predicates() {
        assert!(TyVar::named("a").is_named());
        assert!(TyVar::fresh().is_fresh());
        assert!(TyVar::skolem().is_skolem());
        assert_eq!(TyVar::named("a").name(), Some("a"));
        assert_eq!(TyVar::fresh().name(), None);
    }

    #[test]
    fn tyvars_are_copy_and_small() {
        // The whole point of interning: a TyVar is a couple of machine
        // words passed in registers, not an Arc bump.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TyVar>();
        assert_copy::<Var>();
        assert!(std::mem::size_of::<TyVar>() <= 16);
    }

    #[test]
    fn named_order_is_lexicographic() {
        // Interning order must not leak into Ord (sorted displays).
        let z = TyVar::named("zz_order_test");
        let a = TyVar::named("aa_order_test");
        assert!(a < z);
        assert!(TyVar::named("a") < TyVar::fresh());
        assert!(TyVar::fresh() < TyVar::skolem());
    }

    #[test]
    fn var_basics() {
        assert_eq!(Var::named("x"), Var::named("x"));
        assert_ne!(Var::fresh(), Var::fresh());
        assert_eq!(Var::named("x").name(), Some("x"));
    }
}
