//! System F types (Figure 3): `A, B ::= a | D A̅ | ∀a.A`.
//!
//! FreezeML uses *exactly* the type language of System F — one of the paper's
//! four design goals. Three syntactic classes matter:
//!
//! * **types** `A` — anything;
//! * **monotypes** `S` — no quantifier anywhere ([`Type::is_monotype`]);
//! * **guarded types** `H` — no *top-level* quantifier; any polymorphism is
//!   guarded by a constructor ([`Type::is_guarded`]).
//!
//! Unlike ML, the **order of quantifiers matters** (§2 "Ordered
//! Quantifiers"); [`Type::ftv`] therefore returns free variables in order of
//! first appearance, which is the order generalisation quantifies them.

use crate::names::TyVar;
use crate::symbol::Symbol;
use crate::tycon::TyCon;
use fxhash::{FxHashMap, FxHashSet};
use std::fmt;

/// A System F / FreezeML type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// A type variable `a`.
    Var(TyVar),
    /// A fully applied constructor `D A₁ … Aₙ` (the vector length always
    /// equals `D`'s arity).
    Con(TyCon, Vec<Type>),
    /// A quantified type `∀a.A`.
    Forall(TyVar, Box<Type>),
}

impl Type {
    /// The type variable `a`.
    pub fn var(v: impl Into<TyVar>) -> Type {
        Type::Var(v.into())
    }

    /// `Int`.
    pub fn int() -> Type {
        Type::Con(TyCon::Int, vec![])
    }

    /// `Bool`.
    pub fn bool() -> Type {
        Type::Con(TyCon::Bool, vec![])
    }

    /// The function type `A -> B`.
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Con(TyCon::Arrow, vec![a, b])
    }

    /// The product type `A * B`.
    pub fn prod(a: Type, b: Type) -> Type {
        Type::Con(TyCon::Prod, vec![a, b])
    }

    /// The list type `List A`.
    pub fn list(a: Type) -> Type {
        Type::Con(TyCon::List, vec![a])
    }

    /// The state-thread type `ST S A`.
    pub fn st(s: Type, a: Type) -> Type {
        Type::Con(TyCon::St, vec![s, a])
    }

    /// `∀a₁.…∀aₙ.A` — identifying `∀·.A` with `A` (paper "Notations").
    pub fn foralls<I>(vars: I, body: Type) -> Type
    where
        I: IntoIterator<Item = TyVar>,
        I::IntoIter: DoubleEndedIterator,
    {
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Type::Forall(v, Box::new(acc)))
    }

    /// Split off all top-level quantifiers: `∀∆.H ↦ (∆, H)` with `H` guarded.
    pub fn split_foralls(&self) -> (Vec<TyVar>, &Type) {
        let mut vars = Vec::new();
        let mut t = self;
        while let Type::Forall(a, body) = t {
            vars.push(*a);
            t = body;
        }
        (vars, t)
    }

    /// `ftv(A)`: the sequence of distinct free type variables in order of
    /// first appearance (paper "Notations": `ftv((a→b)→(a→c)) = a,b,c`).
    pub fn ftv(&self) -> Vec<TyVar> {
        // Binders are tracked in a scoped multiset (the count handles
        // `∀a.∀a.…` shadowing); variables are `Copy` symbols, so both
        // maps key on two machine words with one-multiply hashing.
        let mut out = Vec::new();
        let mut seen: FxHashSet<TyVar> = FxHashSet::default();
        let mut bound: FxHashMap<TyVar, u32> = FxHashMap::default();
        self.ftv_into(&mut out, &mut seen, &mut bound);
        out
    }

    fn ftv_into(
        &self,
        out: &mut Vec<TyVar>,
        seen: &mut FxHashSet<TyVar>,
        bound: &mut FxHashMap<TyVar, u32>,
    ) {
        match self {
            Type::Var(a) => {
                if bound.get(a).is_none_or(|&n| n == 0) && seen.insert(*a) {
                    out.push(*a);
                }
            }
            Type::Con(_, args) => {
                for arg in args {
                    arg.ftv_into(out, seen, bound);
                }
            }
            Type::Forall(a, body) => {
                *bound.entry(*a).or_insert(0) += 1;
                body.ftv_into(out, seen, bound);
                *bound.get_mut(a).expect("binder entered above") -= 1;
            }
        }
    }

    /// Does `a` occur free in this type?
    pub fn occurs_free(&self, a: &TyVar) -> bool {
        match self {
            Type::Var(b) => a == b,
            Type::Con(_, args) => args.iter().any(|t| t.occurs_free(a)),
            Type::Forall(b, body) => a != b && body.occurs_free(a),
        }
    }

    /// Is this a monotype `S` (no quantifier anywhere)?
    pub fn is_monotype(&self) -> bool {
        match self {
            Type::Var(_) => true,
            Type::Con(_, args) => args.iter().all(Type::is_monotype),
            Type::Forall(_, _) => false,
        }
    }

    /// Is this a guarded type `H` (no top-level quantifier)?
    pub fn is_guarded(&self) -> bool {
        !matches!(self, Type::Forall(_, _))
    }

    /// Does any quantifier occur anywhere in the type?
    pub fn has_quantifier(&self) -> bool {
        !self.is_monotype()
    }

    /// α-equivalence. Free variables must agree exactly; bound variables may
    /// differ.
    ///
    /// ```
    /// use freezeml_core::parse_type;
    /// let s = parse_type("forall a. a -> a").unwrap();
    /// let t = parse_type("forall b. b -> b").unwrap();
    /// assert!(s.alpha_eq(&t));
    /// ```
    pub fn alpha_eq(&self, other: &Type) -> bool {
        fn go(a: &Type, b: &Type, env: &mut Vec<(TyVar, TyVar)>) -> bool {
            match (a, b) {
                (Type::Var(x), Type::Var(y)) => {
                    for (l, r) in env.iter().rev() {
                        if l == x || r == y {
                            return l == x && r == y;
                        }
                    }
                    x == y
                }
                (Type::Con(c, xs), Type::Con(d, ys)) => {
                    c == d && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| go(x, y, env))
                }
                (Type::Forall(x, bx), Type::Forall(y, by)) => {
                    env.push((*x, *y));
                    let r = go(bx, by, env);
                    env.pop();
                    r
                }
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }

    /// Rename *free* occurrences of invented variables (fresh flexibles and
    /// skolems) to readable, unused source names `a, b, c, …` in order of
    /// first appearance. Source-named variables (free or bound) are never
    /// touched. This is how inference results are presented, matching the
    /// paper's Figure 1 (e.g. `choose id : (a → a) → (a → a)`).
    pub fn canonicalize(&self) -> Type {
        let mut taken: FxHashSet<Symbol> = FxHashSet::default();
        collect_named(self, &mut taken);
        let mut supply = letter_supply(taken);
        let mut map: Vec<(TyVar, TyVar)> = Vec::new();
        for v in self.ftv() {
            if !v.is_named() {
                map.push((
                    v,
                    TyVar::from_symbol(supply.next().expect("infinite supply")),
                ));
            }
        }
        let mut out = self.clone();
        for (from, to) in map {
            out = out.rename_free(&from, &Type::Var(to));
        }
        out
    }

    /// Replace free occurrences of `from` by `to`, renaming binders where
    /// needed to avoid capture (Figure 6 discipline).
    pub fn rename_free(&self, from: &TyVar, to: &Type) -> Type {
        match self {
            Type::Var(a) => {
                if a == from {
                    to.clone()
                } else {
                    self.clone()
                }
            }
            Type::Con(c, args) => {
                Type::Con(*c, args.iter().map(|t| t.rename_free(from, to)).collect())
            }
            Type::Forall(a, body) => {
                if a == from {
                    self.clone()
                } else if to.occurs_free(a) {
                    // Capture: α-rename the binder first.
                    let c = TyVar::fresh();
                    let body2 = body.rename_free(a, &Type::Var(c));
                    Type::Forall(c, Box::new(body2.rename_free(from, to)))
                } else {
                    Type::Forall(*a, Box::new(body.rename_free(from, to)))
                }
            }
        }
    }

    /// The size of the type (number of AST nodes); used by benchmarks and to
    /// bound property-test shrinking.
    pub fn size(&self) -> usize {
        match self {
            Type::Var(_) => 1,
            Type::Con(_, args) => 1 + args.iter().map(Type::size).sum::<usize>(),
            Type::Forall(_, body) => 1 + body.size(),
        }
    }
}

/// Collect the symbols of every *named* variable (free or bound) — the
/// set of names the letter supply must avoid. Symbols are `Copy`, so no
/// strings are allocated.
pub(crate) fn collect_named(t: &Type, out: &mut FxHashSet<Symbol>) {
    match t {
        Type::Var(a) => {
            if let Some(s) = a.symbol() {
                out.insert(s);
            }
        }
        Type::Con(_, args) => args.iter().for_each(|t| collect_named(t, out)),
        Type::Forall(a, body) => {
            if let Some(s) = a.symbol() {
                out.insert(s);
            }
            collect_named(body, out);
        }
    }
}

/// An endless supply of letter names `a..z, a1..z1, a2..`, skipping
/// `taken`. Yields interned [`Symbol`]s; the single letters are
/// pre-seeded in the symbol table and the `taken` test goes through
/// [`Symbol::lookup`], so the common rounds allocate nothing (the old
/// implementation cloned a `HashSet<String>` per round and built a
/// `String` per candidate). Public so the engine's scheme exporter can
/// name residuals exactly like [`Type::canonicalize`] does.
pub fn letter_supply(taken: FxHashSet<Symbol>) -> impl Iterator<Item = Symbol> {
    (0u32..).flat_map(move |round| {
        let taken = taken.clone(); // a set of u32s — cheap, unlike Strings
        (b'a'..=b'z').filter_map(move |c| {
            let sym = if round == 0 {
                Symbol::lookup(std::str::from_utf8(&[c]).expect("ascii letter"))
                    .expect("single letters are pre-seeded")
            } else {
                let name = format!("{}{round}", c as char);
                match Symbol::lookup(&name) {
                    // Never interned anywhere ⇒ cannot be taken.
                    None => return Some(Symbol::intern(&name)),
                    Some(s) => s,
                }
            };
            if taken.contains(&sym) {
                None
            } else {
                Some(sym)
            }
        })
    })
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_type(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> TyVar {
        TyVar::named("a")
    }
    fn b() -> TyVar {
        TyVar::named("b")
    }

    #[test]
    fn ftv_is_ordered_and_distinct() {
        // ftv((a→b)→(a→c)) = a,b,c
        let t = Type::arrow(
            Type::arrow(Type::var("a"), Type::var("b")),
            Type::arrow(Type::var("a"), Type::var("c")),
        );
        let names: Vec<String> = t.ftv().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn ftv_skips_bound() {
        let t = Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("b")));
        let names: Vec<String> = t.ftv().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["b"]);
    }

    #[test]
    fn ftv_scoped_set_handles_shadowing_and_re_exposure() {
        // ∀a.(∀a. a) → a: both occurrences bound (inner exit must not
        // unbind the outer a).
        let t = Type::foralls(
            [a()],
            Type::arrow(Type::foralls([a()], Type::var("a")), Type::var("a")),
        );
        assert!(t.ftv().is_empty());
        // (∀a. a) → a: the second occurrence is free again after the
        // binder's scope closes.
        let u = Type::arrow(Type::foralls([a()], Type::var("a")), Type::var("a"));
        let names: Vec<String> = u.ftv().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["a"]);
    }

    #[test]
    fn monotype_and_guarded() {
        let id = Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("a")));
        assert!(!id.is_monotype());
        assert!(!id.is_guarded());
        let l = Type::list(id.clone());
        assert!(!l.is_monotype());
        assert!(l.is_guarded()); // polymorphism guarded by List
        assert!(Type::arrow(Type::int(), Type::bool()).is_monotype());
    }

    #[test]
    fn split_foralls_strips_prefix_only() {
        let t = Type::foralls([a(), b()], Type::arrow(Type::var("a"), Type::var("b")));
        let (vs, body) = t.split_foralls();
        assert_eq!(vs, vec![a(), b()]);
        assert!(body.is_guarded());
        // Inner quantifiers are not stripped.
        let t2 = Type::arrow(Type::int(), Type::foralls([a()], Type::var("a")));
        assert!(t2.split_foralls().0.is_empty());
    }

    #[test]
    fn alpha_eq_binders_may_differ() {
        let s = Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("a")));
        let t = Type::foralls([b()], Type::arrow(Type::var("b"), Type::var("b")));
        assert!(s.alpha_eq(&t));
    }

    #[test]
    fn alpha_eq_free_vars_must_match() {
        assert!(!Type::var("a").alpha_eq(&Type::var("b")));
        assert!(Type::var("a").alpha_eq(&Type::var("a")));
    }

    #[test]
    fn alpha_eq_respects_quantifier_order() {
        // ∀a b. a → b  vs  ∀b a. a → b  — differ (§2 Ordered Quantifiers).
        let s = Type::foralls([a(), b()], Type::arrow(Type::var("a"), Type::var("b")));
        let t = Type::foralls([b(), a()], Type::arrow(Type::var("a"), Type::var("b")));
        assert!(!s.alpha_eq(&t));
    }

    #[test]
    fn alpha_eq_shadowing() {
        // ∀a.∀a.a  ≡  ∀b.∀c.c
        let s = Type::foralls([a(), a()], Type::var("a"));
        let t = Type::foralls([b(), TyVar::named("c")], Type::var("c"));
        assert!(s.alpha_eq(&t));
        // ∀a.∀a.a  ≢  ∀b.∀c.b
        let u = Type::foralls([b(), TyVar::named("c")], Type::var("b"));
        assert!(!s.alpha_eq(&u));
    }

    #[test]
    fn rename_free_avoids_capture() {
        // (∀a. a → b)[b := a]  must not capture: result ≡ ∀c. c → a.
        let t = Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("b")));
        let r = t.rename_free(&b(), &Type::var("a"));
        let expect = Type::foralls(
            [TyVar::named("c")],
            Type::arrow(Type::var("c"), Type::var("a")),
        );
        assert!(r.alpha_eq(&expect));
    }

    #[test]
    fn rename_free_respects_shadowing() {
        // (∀a. a)[a := Int] = ∀a. a
        let t = Type::foralls([a()], Type::var("a"));
        let r = t.rename_free(&a(), &Type::int());
        assert!(r.alpha_eq(&t));
    }

    #[test]
    fn canonicalize_picks_unused_letters() {
        let f = TyVar::fresh();
        // (∀a.a→a) → (%f → %f)   ⇒   (∀a.a→a) → (b → b)
        let t = Type::arrow(
            Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("a"))),
            Type::arrow(Type::Var(f), Type::Var(f)),
        );
        let c = t.canonicalize();
        let expect = Type::arrow(
            Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("a"))),
            Type::arrow(Type::var("b"), Type::var("b")),
        );
        assert_eq!(c, expect);
    }

    #[test]
    fn canonicalize_orders_by_first_appearance() {
        let f1 = TyVar::fresh();
        let f2 = TyVar::fresh();
        let t = Type::arrow(Type::Var(f2), Type::arrow(Type::Var(f1), Type::Var(f2)));
        let c = t.canonicalize();
        let expect = Type::arrow(Type::var("a"), Type::arrow(Type::var("b"), Type::var("a")));
        assert_eq!(c, expect);
    }

    #[test]
    fn occurs_free_works() {
        let t = Type::foralls([a()], Type::arrow(Type::var("a"), Type::var("b")));
        assert!(!t.occurs_free(&a()));
        assert!(t.occurs_free(&b()));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Type::int().size(), 1);
        assert_eq!(Type::arrow(Type::int(), Type::bool()).size(), 3);
        assert_eq!(Type::foralls([a()], Type::var("a")).size(), 2);
    }
}
