//! Well-scopedness of terms, `∆ ⊩ M` (Figure 9).
//!
//! A prerequisite for inference: every type annotation must be well-kinded
//! with respect to the type variables in scope. FreezeML's scoped type
//! variables (§3.2 "Type Variable Scoping") mean that the top-level
//! quantifiers of a `let` annotation are bound *inside* the right-hand side
//! — but only in the generalising case, i.e. when the right-hand side is a
//! guarded value, as computed by `split`.

use crate::env::KindEnv;
use crate::error::TypeError;
use crate::kind::Kind;
use crate::kinding;
use crate::names::TyVar;
use crate::options::Options;
use crate::term::Term;
use crate::types::Type;

/// `split(∀∆.H, M)` (Figure 8): if `M` is a guarded value the annotation's
/// top-level quantifiers are bound in `M` and the body is exposed;
/// otherwise all quantifiers must originate from `M` itself.
pub fn split(ann: &Type, m: &Term, opts: &Options) -> (Vec<TyVar>, Type) {
    if m.is_gval(opts) {
        let (vars, body) = ann.split_foralls();
        (vars, body.clone())
    } else {
        (Vec::new(), ann.clone())
    }
}

/// Check `∆ ⊩ M` (Figure 9).
///
/// # Errors
///
/// [`TypeError::UnboundTyVar`] for annotation variables not in scope,
/// [`TypeError::ShadowedTyVar`] when a `let` annotation re-binds an
/// in-scope variable, and kinding errors for malformed annotations.
pub fn well_scoped(delta: &KindEnv, term: &Term, opts: &Options) -> Result<(), TypeError> {
    let theta = crate::env::RefinedEnv::new();
    match term {
        Term::Var(_) | Term::FrozenVar(_) | Term::Lit(_) => Ok(()),
        Term::Lam(_, body) => well_scoped(delta, body, opts),
        Term::TyApp(m, ann) => {
            kinding::has_kind(delta, &theta, ann, Kind::Poly)?;
            well_scoped(delta, m, opts)
        }
        Term::LamAnn(_, ann, body) => {
            kinding::has_kind(delta, &theta, ann, Kind::Poly)?;
            well_scoped(delta, body, opts)
        }
        Term::App(f, a) => {
            well_scoped(delta, f, opts)?;
            well_scoped(delta, a, opts)
        }
        Term::Let(_, rhs, body) => {
            well_scoped(delta, rhs, opts)?;
            well_scoped(delta, body, opts)
        }
        Term::LetAnn(_, ann, rhs, body) => {
            kinding::has_kind(delta, &theta, ann, Kind::Poly)?;
            let (vars, _) = split(ann, rhs, opts);
            let delta2 = delta.extended(vars)?;
            well_scoped(&delta2, rhs, opts)?;
            well_scoped(delta, body, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn check(src: &str) -> Result<(), TypeError> {
        let t = parse_term(src).unwrap();
        well_scoped(&KindEnv::new(), &t, &Options::default())
    }

    #[test]
    fn closed_annotations_are_fine() {
        assert!(check("fun (x : forall a. a -> a) -> x x").is_ok());
        assert!(check("let (f : forall a. a -> a) = fun x -> x in f").is_ok());
    }

    #[test]
    fn unannotated_terms_are_fine() {
        assert!(check("fun x -> let y = x in y y").is_ok());
    }

    #[test]
    fn free_annotation_var_is_rejected() {
        // `a` is not bound anywhere.
        assert_eq!(
            check("fun (x : a -> a) -> x"),
            Err(TypeError::UnboundTyVar(TyVar::named("a")))
        );
    }

    #[test]
    fn let_annotation_scopes_over_rhs() {
        // §3.2: let (f : ∀a.a→a) = λ(x:a).x in N — the `a` on x is bound by
        // the annotation on f.
        assert!(check("let (f : forall a. a -> a) = fun (x : a) -> x in f 3").is_ok());
    }

    #[test]
    fn let_annotation_does_not_scope_over_body() {
        assert_eq!(
            check("let (f : forall a. a -> a) = fun (x : a) -> x in fun (y : a) -> y"),
            Err(TypeError::UnboundTyVar(TyVar::named("a")))
        );
    }

    #[test]
    fn unannotated_let_does_not_bind_type_vars() {
        // Dropping the annotation on f leaves `a` unbound (paper §3.2).
        assert_eq!(
            check("let f = fun (x : a) -> x in f 3"),
            Err(TypeError::UnboundTyVar(TyVar::named("a")))
        );
    }

    #[test]
    fn non_value_rhs_does_not_bind_annotation_vars() {
        // split on a non-guarded-value rhs binds nothing, so `a` is unbound
        // inside the rhs annotation.
        assert_eq!(
            check("let (f : forall a. a -> a) = (fun (x : a) -> x) id in f"),
            Err(TypeError::UnboundTyVar(TyVar::named("a")))
        );
    }

    #[test]
    fn pure_mode_always_binds() {
        // Without the value restriction the same program is well-scoped.
        let t = parse_term("let (f : forall a. a -> a) = (fun (x : a) -> x) id in f").unwrap();
        assert!(well_scoped(&KindEnv::new(), &t, &Options::pure_freezeml()).is_ok());
    }

    #[test]
    fn shadowing_annotation_binder_is_rejected() {
        // Both rhs's are guarded values, so both annotations bind their
        // top-level quantifiers — and the inner one re-binds `a`, which
        // violates the disjointness required by `∆,∆′`.
        let t = parse_term(
            "let (f : forall a. a -> a) = (let (g : forall a. a -> a) = fun x -> x in g) in f",
        )
        .unwrap();
        assert_eq!(
            well_scoped(&KindEnv::new(), &t, &Options::default()),
            Err(TypeError::ShadowedTyVar {
                var: TyVar::named("a")
            })
        );
    }

    #[test]
    fn frozen_tail_rhs_binds_nothing() {
        // With a frozen variable in tail position the outer rhs is *not* a
        // guarded value, so its annotation binds nothing inside it and the
        // inner ∀a is a fresh, unproblematic binder (§3.2).
        assert!(check(
            "let (f : forall a. a -> a) = let (g : forall a. a -> a) = fun x -> x in ~g in f"
        )
        .is_ok());
    }

    #[test]
    fn nested_distinct_binders_are_fine() {
        assert!(check(
            "let (f : forall a. a -> a) = (let (g : forall b. b -> b) = fun x -> x in g) in f"
        )
        .is_ok());
    }
}
