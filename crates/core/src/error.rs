//! Type errors produced by kinding, unification, and inference.

use crate::names::{TyVar, Var};
use crate::tycon::TyCon;
use crate::types::Type;
use std::fmt;

/// An error from the FreezeML type checker.
///
/// Every failure mode of Figures 15 and 16 has a dedicated variant so that
/// tests can assert *why* a program is ill-typed, not merely that it is.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// A term variable is not bound in `Γ`.
    UnboundVar(Var),
    /// A type variable is not bound in `∆` or `Θ` (also raised by the
    /// well-scopedness judgement `∆ ⊩ M`, Figure 9).
    UnboundTyVar(TyVar),
    /// A constructor is applied to the wrong number of arguments.
    ConArity {
        /// The constructor.
        con: TyCon,
        /// Its declared arity.
        expected: usize,
        /// The number of arguments found.
        found: usize,
    },
    /// Unification failed on incompatible head constructors (including
    /// `∀` vs. non-`∀` and distinct rigid variables).
    Mismatch {
        /// Left type at the point of failure.
        left: Type,
        /// Right type at the point of failure.
        right: Type,
    },
    /// The occurs check failed: `a` would have to contain itself.
    Occurs {
        /// The flexible variable.
        var: TyVar,
        /// The type it was being unified with.
        ty: Type,
    },
    /// A polymorphic type was required where only a monotype is allowed —
    /// the kind-`•` check that enforces "never guess polymorphism" (§3.2).
    PolyNotAllowed {
        /// The offending polymorphic type.
        ty: Type,
    },
    /// A skolem introduced when unifying quantified types escaped its scope
    /// (the `c ∉ ftv(θ′)` assertion of Figure 15).
    SkolemEscape {
        /// The escaping skolem.
        var: TyVar,
    },
    /// Quantified variables of a `let` annotation leaked into the ambient
    /// substitution (the `ftv(θ₂) # ∆′` assertion of Figure 16).
    AnnotationEscape {
        /// The escaping annotation variables.
        vars: Vec<TyVar>,
    },
    /// Environment formation `Θ ⊢ Γ` was violated: a type in `Γ` mentions a
    /// polymorphic flexible variable (Figure 12, Extend).
    PolyVarInEnv {
        /// The polymorphic flexible variable.
        var: TyVar,
    },
    /// A `let` annotation binds a type variable that is already in scope
    /// (concatenation `∆,∆′` requires disjointness, §3 Notations).
    ShadowedTyVar {
        /// The re-bound variable.
        var: TyVar,
    },
    /// Explicit type application `M@[A]` (§6 extension) applied to a term
    /// whose type has no outermost quantifier.
    CannotTypeApply {
        /// The non-quantified type of `M`.
        ty: Type,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            TypeError::UnboundTyVar(a) => write!(f, "unbound type variable `{a}`"),
            TypeError::ConArity {
                con,
                expected,
                found,
            } => write!(
                f,
                "type constructor `{con}` expects {expected} argument(s) but got {found}"
            ),
            TypeError::Mismatch { left, right } => {
                write!(f, "cannot unify `{left}` with `{right}`")
            }
            TypeError::Occurs { var, ty } => {
                write!(f, "occurs check: `{var}` would be infinite in `{ty}`")
            }
            TypeError::PolyNotAllowed { ty } => write!(
                f,
                "polymorphic type `{ty}` not allowed here (monomorphic context)"
            ),
            TypeError::SkolemEscape { var } => {
                write!(f, "rigid type variable `{var}` escapes its scope")
            }
            TypeError::AnnotationEscape { vars } => {
                write!(f, "annotation type variable(s) ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{v}`")?;
                }
                write!(f, " escape into the enclosing context")
            }
            TypeError::PolyVarInEnv { var } => write!(
                f,
                "flexible type variable `{var}` in the environment must be monomorphic"
            ),
            TypeError::ShadowedTyVar { var } => write!(
                f,
                "type variable `{var}` is already bound in an enclosing annotation"
            ),
            TypeError::CannotTypeApply { ty } => {
                write!(f, "cannot type-apply a term of non-quantified type `{ty}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TypeError> = vec![
            TypeError::UnboundVar(Var::named("x")),
            TypeError::UnboundTyVar(TyVar::named("a")),
            TypeError::ConArity {
                con: TyCon::List,
                expected: 1,
                found: 2,
            },
            TypeError::Mismatch {
                left: Type::int(),
                right: Type::bool(),
            },
            TypeError::Occurs {
                var: TyVar::named("a"),
                ty: Type::int(),
            },
            TypeError::PolyNotAllowed { ty: Type::int() },
            TypeError::SkolemEscape {
                var: TyVar::named("s"),
            },
            TypeError::AnnotationEscape {
                vars: vec![TyVar::named("a"), TyVar::named("b")],
            },
            TypeError::PolyVarInEnv {
                var: TyVar::named("a"),
            },
            TypeError::ShadowedTyVar {
                var: TyVar::named("a"),
            },
            TypeError::CannotTypeApply { ty: Type::int() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
