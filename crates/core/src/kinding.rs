//! Kinding judgements.
//!
//! * Figure 4 — object-language kinding `∆ ⊢ A : K` (rigid variables only);
//! * Figure 12 — refined kinding `Θ ⊢ A : K` where flexible variables carry
//!   their own kinds, plus environment formation `Θ ⊢ Γ` whose `Extend`
//!   rule demands that every free variable of a type in `Γ` is monomorphic —
//!   the invariant that prevents guessing polymorphism (§5.1).
//!
//! Both are implemented by [`kind_of`], which computes the *minimal* kind of
//! a type (`•` if derivable, else `⋆`); the upcast rule then gives
//! [`has_kind`] for free.

use crate::env::{KindEnv, RefinedEnv, TypeEnv};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::names::TyVar;
use crate::types::Type;

/// Compute the minimal kind of `ty` under rigid environment `∆` and refined
/// environment `Θ` (Figures 4 and 12; pass an empty `Θ` for the
/// object-language judgement).
///
/// # Errors
///
/// [`TypeError::UnboundTyVar`] if a free variable of `ty` is in neither
/// environment, and [`TypeError::ConArity`] on arity mismatches.
pub fn kind_of(delta: &KindEnv, theta: &RefinedEnv, ty: &Type) -> Result<Kind, TypeError> {
    let mut bound = Vec::new();
    go(delta, theta, ty, &mut bound)
}

fn go(
    delta: &KindEnv,
    theta: &RefinedEnv,
    ty: &Type,
    bound: &mut Vec<TyVar>,
) -> Result<Kind, TypeError> {
    match ty {
        Type::Var(a) => {
            if bound.contains(a) {
                // ForAll-bound variables have kind • (Figure 12, ForAll).
                Ok(Kind::Mono)
            } else if let Some(k) = theta.kind_of(a) {
                Ok(k)
            } else if delta.contains(a) {
                Ok(Kind::Mono)
            } else {
                Err(TypeError::UnboundTyVar(*a))
            }
        }
        Type::Con(c, args) => {
            if args.len() != c.arity() {
                return Err(TypeError::ConArity {
                    con: *c,
                    expected: c.arity(),
                    found: args.len(),
                });
            }
            let mut k = Kind::Mono;
            for arg in args {
                k = k.join(go(delta, theta, arg, bound)?);
            }
            Ok(k)
        }
        Type::Forall(a, body) => {
            bound.push(*a);
            let r = go(delta, theta, body, bound);
            bound.pop();
            r?;
            Ok(Kind::Poly)
        }
    }
}

/// Check `∆, Θ ⊢ A : K` (using the upcast rule).
///
/// # Errors
///
/// Propagates [`kind_of`] errors; returns [`TypeError::PolyNotAllowed`] when
/// the minimal kind exceeds `k`.
pub fn has_kind(delta: &KindEnv, theta: &RefinedEnv, ty: &Type, k: Kind) -> Result<(), TypeError> {
    let actual = kind_of(delta, theta, ty)?;
    if actual.le(k) {
        Ok(())
    } else {
        Err(TypeError::PolyNotAllowed { ty: ty.clone() })
    }
}

/// Environment formation `∆, Θ ⊢ Γ` (Figure 12, Empty/Extend): every type in
/// `Γ` must be well-kinded and all of its free type variables monomorphic.
///
/// # Errors
///
/// [`TypeError::PolyVarInEnv`] if a type in `Γ` mentions a `⋆`-kinded
/// flexible variable; kinding errors otherwise.
pub fn check_env(delta: &KindEnv, theta: &RefinedEnv, gamma: &TypeEnv) -> Result<(), TypeError> {
    for (_, ty) in gamma.iter() {
        has_kind(delta, theta, ty, Kind::Poly)?;
        for v in ty.ftv() {
            if theta.kind_of(&v) == Some(Kind::Poly) {
                return Err(TypeError::PolyVarInEnv { var: v });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(vars: &[&str]) -> KindEnv {
        vars.iter().map(TyVar::named).collect()
    }

    #[test]
    fn rigid_vars_are_mono() {
        let d = delta(&["a"]);
        let th = RefinedEnv::new();
        assert_eq!(kind_of(&d, &th, &Type::var("a")).unwrap(), Kind::Mono);
    }

    #[test]
    fn unbound_var_errors() {
        let e = kind_of(&KindEnv::new(), &RefinedEnv::new(), &Type::var("a"));
        assert_eq!(e, Err(TypeError::UnboundTyVar(TyVar::named("a"))));
    }

    #[test]
    fn flexible_kind_from_theta() {
        let th: RefinedEnv = [(TyVar::named("a"), Kind::Poly)].into_iter().collect();
        assert_eq!(
            kind_of(&KindEnv::new(), &th, &Type::var("a")).unwrap(),
            Kind::Poly
        );
    }

    #[test]
    fn forall_is_poly_and_binds_mono() {
        let t = Type::foralls(
            [TyVar::named("a")],
            Type::arrow(Type::var("a"), Type::var("a")),
        );
        assert_eq!(
            kind_of(&KindEnv::new(), &RefinedEnv::new(), &t).unwrap(),
            Kind::Poly
        );
    }

    #[test]
    fn constructor_kind_is_join_of_args() {
        let d = delta(&["a"]);
        let th = RefinedEnv::new();
        let id = Type::foralls(
            [TyVar::named("b")],
            Type::arrow(Type::var("b"), Type::var("b")),
        );
        // List a : •, List (∀b.b→b) : ⋆ only.
        assert_eq!(
            kind_of(&d, &th, &Type::list(Type::var("a"))).unwrap(),
            Kind::Mono
        );
        assert_eq!(
            kind_of(&d, &th, &Type::list(id.clone())).unwrap(),
            Kind::Poly
        );
        assert!(has_kind(&d, &th, &Type::list(id.clone()), Kind::Poly).is_ok());
        assert_eq!(
            has_kind(&d, &th, &Type::list(id.clone()), Kind::Mono),
            Err(TypeError::PolyNotAllowed { ty: Type::list(id) })
        );
    }

    #[test]
    fn arity_mismatch() {
        let t = Type::Con(crate::tycon::TyCon::List, vec![Type::int(), Type::int()]);
        assert!(matches!(
            kind_of(&KindEnv::new(), &RefinedEnv::new(), &t),
            Err(TypeError::ConArity { .. })
        ));
    }

    #[test]
    fn shadowed_binder_is_mono_inside() {
        // Θ = a:⋆ but ∀a. … rebinds a at kind •.
        let th: RefinedEnv = [(TyVar::named("a"), Kind::Poly)].into_iter().collect();
        let t = Type::foralls([TyVar::named("a")], Type::list(Type::var("a")));
        assert_eq!(kind_of(&KindEnv::new(), &th, &t).unwrap(), Kind::Poly);
        // And the inner List a is mono with respect to the binder.
        if let Type::Forall(_, body) = &t {
            let mut bound = vec![TyVar::named("a")];
            assert_eq!(
                super::go(&KindEnv::new(), &th, body, &mut bound).unwrap(),
                Kind::Mono
            );
        }
    }

    #[test]
    fn env_formation_rejects_poly_flexibles() {
        let a = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Poly)].into_iter().collect();
        let mut g = TypeEnv::new();
        g.push("x", Type::Var(a));
        assert_eq!(
            check_env(&KindEnv::new(), &th, &g),
            Err(TypeError::PolyVarInEnv { var: a })
        );
    }

    #[test]
    fn env_formation_accepts_mono_flexibles_and_closed_polytypes() {
        let a = TyVar::fresh();
        let th: RefinedEnv = [(a, Kind::Mono)].into_iter().collect();
        let mut g = TypeEnv::new();
        g.push("x", Type::Var(a));
        g.push(
            "id",
            Type::foralls(
                [TyVar::named("b")],
                Type::arrow(Type::var("b"), Type::var("b")),
            ),
        );
        assert!(check_env(&KindEnv::new(), &th, &g).is_ok());
    }
}
